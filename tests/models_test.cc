// Model-zoo tests: parameter-count structure, end-to-end SPMD equivalence
// of partitioned training steps, and the analytic collective counts that
// Table 3 is built from, verified on small configurations:
//   BP        : AR = #params + 1 (one AllReduce per gradient + the loss)
//   BP+MP     : + 4 AR per layer (Megatron forward+backward)
//   BP+MP+Z2  : 4L+1 gradients become ReduceScatters, 1 AllGather each
//   BP+MP+Z3  : additionally ~2 AllGathers per sharded parameter use
//   ES (GNS)  : AllReduces for scatter aggregations + sharded-grad sums
//   MQ (IT32) : 2 All2Alls per layer per decode step
#include <cmath>

#include <gtest/gtest.h>

#include "src/interp/interpreter.h"
#include "src/models/gns.h"
#include "src/models/schedules.h"
#include "src/models/transformer.h"
#include "src/models/unet.h"
#include "src/spmd/spmd_interpreter.h"

namespace partir {
namespace {

TransformerConfig TinyTransformer() {
  TransformerConfig config;
  config.num_layers = 2;
  config.d_model = 16;
  config.num_heads = 4;
  config.head_dim = 4;
  config.ffw_size = 32;
  config.vocab = 32;
  config.batch = 4;
  config.seq = 4;
  return config;
}

PartitionResult RunSchedule(Func* func, const Mesh& mesh,
                            const std::vector<Tactic>& schedule) {
  PartitionContext ctx(func, mesh);
  PartitionOptions options;
  options.per_tactic_reports = false;
  return PartirJit(ctx, schedule, options);
}

TEST(TransformerModelTest, ParamCountIs9PerBlockPlusEmbedding) {
  TransformerConfig config = TinyTransformer();
  Module module;
  Func* loss = BuildTransformerLoss(module, config);
  // args = params + tokens + targets.
  EXPECT_EQ(loss->body().num_args(), config.NumParams() + 2);
  EXPECT_EQ(config.NumParams(), 9 * config.num_layers + 1);
  // T32's configuration yields the paper's 289 parameters.
  EXPECT_EQ(TransformerConfig::T32Scaled().NumParams(), 289);
  EXPECT_EQ(TransformerConfig::T48Scaled().NumParams(), 9 * 48 + 1);
}

TEST(TransformerModelTest, LossEvaluatesFinite) {
  TransformerConfig config = TinyTransformer();
  Module module;
  Func* loss = BuildTransformerLoss(module, config);
  auto inputs = MakeRandomInputs(*loss, 7, /*index_modulus=*/
                                 static_cast<float>(config.vocab));
  auto out = Evaluate(*loss, inputs);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(std::isfinite(out[0].at(0)));
  EXPECT_GT(out[0].at(0), 0.0f);  // cross-entropy of random logits
}

TEST(TransformerModelTest, BpCollectivesAreOneARPerParamPlusLoss) {
  TransformerConfig config = TinyTransformer();
  Module module;
  Func* step = BuildTransformerTrainingStep(module, config);
  Mesh mesh({{"batch", 4}, {"model", 2}});
  PartitionResult result =
      RunSchedule(step, mesh, {schedules::TransformerBP()});
  EXPECT_EQ(result.collectives.all_reduce, config.NumParams() + 1);
  EXPECT_EQ(result.collectives.all_gather, 0);
  EXPECT_EQ(result.collectives.reduce_scatter, 0);
  EXPECT_EQ(result.collectives.all_to_all, 0);
}

TEST(TransformerModelTest, BpMpAddsFourAllReducesPerLayer) {
  TransformerConfig config = TinyTransformer();
  Module module;
  Func* step = BuildTransformerTrainingStep(module, config);
  Mesh mesh({{"batch", 4}, {"model", 2}});
  PartitionResult result = RunSchedule(
      step, mesh, {schedules::TransformerBP(), schedules::TransformerMP()});
  EXPECT_EQ(result.collectives.all_reduce,
            config.NumParams() + 1 + 4 * config.num_layers);
  EXPECT_EQ(result.collectives.all_gather, 0);
}

TEST(TransformerModelTest, Z2ShardsOptimizerState) {
  TransformerConfig config = TinyTransformer();
  Module module;
  Func* step = BuildTransformerTrainingStep(module, config);
  Mesh mesh({{"batch", 4}, {"model", 2}});
  PartitionResult result = RunSchedule(
      step, mesh,
      {schedules::TransformerBP(), schedules::TransformerMP(),
       schedules::TransformerZ2()});
  // 4 attention projections per layer + the embedding are Z-sharded.
  int64_t sharded = 4 * config.num_layers + 1;
  EXPECT_EQ(result.collectives.reduce_scatter, sharded);
  EXPECT_EQ(result.collectives.all_gather, sharded);
  EXPECT_EQ(result.collectives.all_reduce,
            config.NumParams() + 1 + 4 * config.num_layers - sharded);
}

TEST(TransformerModelTest, Z3GathersParamsOncePerUse) {
  TransformerConfig config = TinyTransformer();
  Module module;
  Func* step = BuildTransformerTrainingStep(module, config);
  Mesh mesh({{"batch", 4}, {"model", 2}});
  PartitionResult result = RunSchedule(
      step, mesh,
      {schedules::TransformerBP(), schedules::TransformerMP(),
       schedules::TransformerZ3()});
  int64_t sharded = 4 * config.num_layers + 1;
  EXPECT_EQ(result.collectives.reduce_scatter, sharded);
  // wq/wk/wv/wo are each used twice (forward + backward); the tied
  // embedding three times (two forward uses + backward) -> 2*4L + 3.
  EXPECT_EQ(result.collectives.all_gather, 8 * config.num_layers + 3);
  EXPECT_EQ(result.collectives.all_reduce,
            config.NumParams() + 1 + 4 * config.num_layers - sharded);
}

TEST(TransformerModelTest, BpTrainingStepSpmdMatchesReference) {
  TransformerConfig config = TinyTransformer();
  config.num_layers = 1;
  Module module;
  Func* step = BuildTransformerTrainingStep(module, config);
  Mesh mesh({{"batch", 2}, {"model", 2}});
  PartitionResult result = RunSchedule(
      step, mesh, {schedules::TransformerBP(), schedules::TransformerMP()});

  auto inputs = MakeRandomInputs(*step, 21, /*index_modulus=*/
                                 static_cast<float>(config.vocab));
  auto want = Evaluate(*step, inputs);
  auto got = RunSpmd(result.spmd, inputs).value();
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_LT(Tensor::MaxAbsDiff(want[i], got[i]), 5e-3f) << "output " << i;
  }
}

TEST(TransformerModelTest, FsdpTrainingStepSpmdMatchesReference) {
  TransformerConfig config = TinyTransformer();
  config.num_layers = 1;
  Module module;
  Func* step = BuildTransformerTrainingStep(module, config);
  Mesh mesh({{"batch", 2}, {"model", 2}});
  PartitionResult result = RunSchedule(
      step, mesh,
      {schedules::TransformerBP(), schedules::TransformerMP(),
       schedules::TransformerZ3()});
  auto inputs = MakeRandomInputs(*step, 22, /*index_modulus=*/
                                 static_cast<float>(config.vocab));
  auto want = Evaluate(*step, inputs);
  auto got = RunSpmd(result.spmd, inputs).value();
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_LT(Tensor::MaxAbsDiff(want[i], got[i]), 5e-3f) << "output " << i;
  }
}

TEST(TransformerModelTest, InferenceBpHasNoCollectives) {
  TransformerConfig config = TinyTransformer();
  Module module;
  Func* infer = BuildTransformerInference(module, config, /*decode_steps=*/3);
  Mesh mesh({{"batch", 4}, {"model", 2}});
  PartitionContext ctx(infer, mesh);
  PartitionOptions options;
  options.per_tactic_reports = false;
  ManualPartition bp{"BP", {{"tokens", 0}, {"decode_tokens", 0}}, "batch"};
  PartitionResult result = PartirJit(ctx, {bp}, options);
  EXPECT_EQ(result.collectives.all_reduce, 0);
  EXPECT_EQ(result.collectives.all_gather, 0);
  EXPECT_EQ(result.collectives.all_to_all, 0);
}

TEST(TransformerModelTest, InferenceMpCostsTwoARsPerLayerPerPosition) {
  TransformerConfig config = TinyTransformer();
  Module module;
  int64_t steps = 3;
  Func* infer = BuildTransformerInference(module, config, steps);
  Mesh mesh({{"batch", 4}, {"model", 2}});
  PartitionContext ctx(infer, mesh);
  PartitionOptions options;
  options.per_tactic_reports = false;
  ManualPartition bp{"BP", {{"tokens", 0}, {"decode_tokens", 0}}, "batch"};
  PartitionResult result =
      PartirJit(ctx, {bp, schedules::TransformerMP()}, options);
  // 2 AR per layer for the prefill + 2 per layer per decode step.
  EXPECT_EQ(result.collectives.all_reduce,
            2 * config.num_layers * (steps + 1));
}

TEST(TransformerModelTest, MultiQueryShardingIntroducesAllToAlls) {
  TransformerConfig config = TinyTransformer();
  config.multi_query = true;
  Module module;
  int64_t steps = 3;
  Func* infer = BuildTransformerInference(module, config, steps);
  Mesh mesh({{"batch", 4}, {"model", 2}});
  PartitionContext ctx(infer, mesh);
  PartitionOptions options;
  options.per_tactic_reports = false;
  ManualPartition bp{"BP", {{"tokens", 0}, {"decode_tokens", 0}}, "batch"};
  PartitionResult result = PartirJit(
      ctx, {bp, schedules::TransformerMP(), schedules::TransformerMQ()},
      options);
  // Two all_to_alls per layer per decode step (q in, attention out).
  EXPECT_EQ(result.collectives.all_to_all,
            2 * config.num_layers * steps);
}

TEST(UNetModelTest, ParamCountAndBpCollectives) {
  UNetConfig config;
  Module module;
  Func* loss = BuildUNetLoss(module, config);
  EXPECT_EQ(loss->body().num_args(), config.NumParams() + 2);

  Module step_module;
  Func* step = BuildUNetTrainingStep(step_module, config);
  Mesh mesh({{"batch", 4}, {"model", 2}});
  PartitionResult result =
      RunSchedule(step, mesh, {schedules::UNetBP()});
  EXPECT_EQ(result.collectives.all_reduce, config.NumParams() + 1);
  EXPECT_EQ(result.collectives.all_gather, 0);
}

TEST(UNetModelTest, Z3ShardsEveryParameterWithAGather) {
  UNetConfig config;
  Module module;
  Func* step = BuildUNetTrainingStep(module, config);
  Mesh mesh({{"batch", 4}, {"model", 2}});
  PartitionResult result = RunSchedule(
      step, mesh, {schedules::UNetBP(), schedules::UNetZ3()});
  // Nearly every gradient becomes a reduce_scatter (paper: 501 of 503).
  EXPECT_GT(result.collectives.reduce_scatter, config.NumParams() * 9 / 10);
  // Each sharded parameter is gathered at least once per use.
  EXPECT_GT(result.collectives.all_gather,
            result.collectives.reduce_scatter);
  EXPECT_LT(result.collectives.all_reduce, 20);
}

TEST(UNetModelTest, Z2KeepsParamsReplicated) {
  UNetConfig config;
  Module module;
  Func* step = BuildUNetTrainingStep(module, config);
  Mesh mesh({{"batch", 4}, {"model", 2}});
  PartitionResult result = RunSchedule(
      step, mesh, {schedules::UNetBP(), schedules::UNetZ2()});
  // Z2: one gather per sharded update (params replicated), grads scattered.
  EXPECT_GT(result.collectives.reduce_scatter, config.NumParams() * 9 / 10);
  EXPECT_NEAR(static_cast<double>(result.collectives.all_gather),
              static_cast<double>(result.collectives.reduce_scatter),
              result.collectives.reduce_scatter * 0.1);
}

TEST(UNetModelTest, BpSpmdMatchesReference) {
  UNetConfig config;
  config.num_down = 3;
  config.num_up = 4;
  config.batch = 4;
  config.attention_heads = 4;
  Module module;
  Func* loss = BuildUNetLoss(module, config);
  Mesh mesh({{"batch", 2}, {"model", 2}});
  PartitionContext ctx(loss, mesh);
  PartitionOptions options;
  options.per_tactic_reports = false;
  PartitionResult result =
      PartirJit(ctx, {schedules::UNetBP(), schedules::UNetMP()}, options);
  auto inputs = MakeRandomInputs(*loss, 31);
  auto want = Evaluate(*loss, inputs);
  auto got = RunSpmd(result.spmd, inputs).value();
  EXPECT_LT(Tensor::MaxAbsDiff(want[0], got[0]), 5e-3f);
}

TEST(GnsModelTest, ParamCountAndEdgeSharding) {
  GnsConfig config;
  Module module;
  Func* loss = BuildGnsLoss(module, config);
  EXPECT_EQ(loss->body().num_args(), config.NumParams() + 5);

  Module step_module;
  Func* step = BuildGnsTrainingStep(step_module, config);
  Mesh mesh({{"batch", 4}});
  PartitionResult result = RunSchedule(step, mesh, {schedules::GnsES()});
  // Edge sharding introduces AllReduces for every scatter aggregation and
  // for every gradient contracted over the sharded edge dim; the exact
  // total is measured, but there must be at least one per message step.
  EXPECT_GE(result.collectives.all_reduce, config.message_steps);
  EXPECT_EQ(result.collectives.all_to_all, 0);
}

TEST(GnsModelTest, EsSpmdMatchesReference) {
  GnsConfig config;
  config.message_steps = 2;
  config.num_edges = 16;
  config.num_nodes = 8;
  Module module;
  Func* loss = BuildGnsLoss(module, config);
  Mesh mesh({{"batch", 4}});
  PartitionContext ctx(loss, mesh);
  PartitionOptions options;
  options.per_tactic_reports = false;
  PartitionResult result = PartirJit(ctx, {schedules::GnsES()}, options);
  auto inputs = MakeRandomInputs(
      *loss, 41, /*index_modulus=*/static_cast<float>(config.num_nodes));
  auto want = Evaluate(*loss, inputs);
  auto got = RunSpmd(result.spmd, inputs).value();
  EXPECT_LT(Tensor::MaxAbsDiff(want[0], got[0]), 5e-3f);
}

TEST(GnsModelTest, TrainingStepEvaluates) {
  GnsConfig config;
  config.message_steps = 1;
  config.mlp_layers = 2;
  Module module;
  Func* step = BuildGnsTrainingStep(module, config);
  auto inputs = MakeRandomInputs(
      *step, 43, /*index_modulus=*/static_cast<float>(config.num_nodes));
  auto out = Evaluate(*step, inputs);
  EXPECT_TRUE(std::isfinite(out.back().at(0)));
}

}  // namespace
}  // namespace partir

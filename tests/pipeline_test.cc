// Tests for the schedule API (Table 1), the simulator/cost model
// (Appendix A.3), the MCTS automatic partitioner, and the GSPMD-style
// baseline — the pieces the experiment harness composes.
#include <gtest/gtest.h>

#include "src/autopart/mcts.h"
#include "src/baseline/gspmd.h"
#include "src/ir/builder.h"
#include "src/models/schedules.h"
#include "src/models/transformer.h"
#include "src/schedule/schedule.h"
#include "src/sim/cost_model.h"

namespace partir {
namespace {

struct Chain {
  Module module;
  Func* func;
  Value* x;
  Value* w1;
  Value* w2;
};

Chain BuildChain(int64_t rows = 64) {
  Chain chain;
  chain.func = chain.module.AddFunc("main");
  chain.x = chain.func->body().AddArg(TensorType({rows, 32}), "x");
  chain.w1 = chain.func->body().AddArg(TensorType({32, 64}), "w1");
  chain.w2 = chain.func->body().AddArg(TensorType({64, 32}), "w2");
  OpBuilder builder(&chain.func->body());
  Value* h = builder.Tanh(builder.MatMul(chain.x, chain.w1));
  Value* out = builder.MatMul(h, chain.w2);
  builder.Return({out});
  return chain;
}

TEST(ScheduleTest, PerTacticReportsShowIncrementalProgress) {
  Chain chain = BuildChain();
  PartitionContext ctx(chain.func, Mesh({{"B", 4}, {"M", 2}}));
  PartitionOptions options;
  options.per_tactic_reports = true;
  ManualPartition bp{"BP", {{"x", 0}}, "B"};
  ManualPartition mp{"MP", {{"w1", 1}}, "M"};
  PartitionResult result = PartirJit(ctx, {bp, mp}, options);
  ASSERT_EQ(result.tactics.size(), 2u);
  EXPECT_EQ(result.tactics[0].name, "BP");
  EXPECT_EQ(result.tactics[0].collectives.all_reduce, 0);
  EXPECT_EQ(result.tactics[1].collectives.all_reduce, 1);
  EXPECT_GT(result.tactics[0].estimate.step_seconds, 0);
  // Memory drops as the second tactic shards the weights.
  EXPECT_LE(result.tactics[1].estimate.peak_memory_bytes,
            result.tactics[0].estimate.peak_memory_bytes);
}

TEST(ScheduleTest, SubstringKeysMatchAllBlocks) {
  TransformerConfig config;
  config.num_layers = 3;
  config.d_model = 16;
  config.num_heads = 4;
  config.head_dim = 4;
  config.ffw_size = 32;
  config.vocab = 32;
  config.batch = 4;
  config.seq = 4;
  Module module;
  Func* loss = BuildTransformerLoss(module, config);
  PartitionContext ctx(loss, Mesh({{"model", 2}}));
  // One key shards all three blocks' wq.
  ManualPartition mp{"MP", {{"wq", 1}}, "model"};
  EXPECT_EQ(ApplyManualTactic(ctx, mp), 3);
}

TEST(ScheduleTest, FirstDivisibleDimSkipsIndivisible) {
  Module module;
  Func* func = module.AddFunc("main");
  Value* w = func->body().AddArg(TensorType({3, 3, 8, 16}), "w");
  OpBuilder builder(&func->body());
  builder.Return({builder.Neg(w)});
  PartitionContext ctx(func, Mesh({{"B", 4}}));
  ManualPartition z{"Z", {{"w", kFirstDivisibleDim}}, "B"};
  EXPECT_EQ(ApplyManualTactic(ctx, z), 1);
  EXPECT_EQ(ctx.state(w).DimOfAxis("B"), 2);  // first dim divisible by 4
}

TEST(ScheduleTest, ReplicatedMarksAtomic) {
  Chain chain = BuildChain();
  PartitionContext ctx(chain.func, Mesh({{"B", 4}}));
  ManualPartition z2{"Z2", {{"w1", kReplicated}}, "B"};
  ApplyManualTactic(ctx, z2);
  EXPECT_TRUE(ctx.IsAtomic(chain.w1, "B"));
  // A later tile on the atomic value is refused.
  EXPECT_FALSE(ctx.TileValue(chain.w1, 0, "B"));
}

TEST(ScheduleTest, NonIncrementalModeDefersToOnePropagation) {
  Chain chain = BuildChain();
  PartitionContext ctx(chain.func, Mesh({{"B", 4}}));
  PartitionOptions options;
  options.incremental = false;
  options.per_tactic_reports = false;
  // Conflicting seeds: with incrementality BP would win at the first
  // matmul; amalgamated, the conflict blocks propagation entirely.
  ManualPartition bp{"BP", {{"x", 0}}, "B"};
  ManualPartition z{"Z", {{"w1", 1}}, "B"};
  PartitionResult result = PartirJit(ctx, {bp, z}, options);
  EXPECT_FALSE(result.conflicts.empty());
}

TEST(SimTest, FlopsOfDotIs2MNK) {
  Chain chain = BuildChain();
  // 64x32 @ 32x64: 2*64*64*32 flops; then tanh 64*64; 64x64 @ 64x32.
  const Operation* dot1 = chain.func->body().ops()[0]->kind() == OpKind::kDot
                              ? chain.func->body().ops()[0].get()
                              : nullptr;
  ASSERT_NE(dot1, nullptr);
  EXPECT_DOUBLE_EQ(OpFlops(*dot1), 2.0 * 64 * 64 * 32);
  double total = FuncFlops(*chain.func);
  EXPECT_DOUBLE_EQ(total,
                   2.0 * 64 * 64 * 32 + 64 * 64 + 2.0 * 64 * 32 * 64);
}

TEST(SimTest, PeakMemoryTracksLiveRanges) {
  Module module;
  Func* func = module.AddFunc("main");
  Value* x = func->body().AddArg(TensorType({1024}), "x");  // 4 KB
  OpBuilder builder(&func->body());
  Value* a = builder.Neg(x);     // +4KB (x still live)
  Value* b = builder.Exp(a);     // +4KB (x dead after? x used only by a)
  Value* c = builder.Tanh(b);
  builder.Return({c});
  double peak = EstimatePeakMemory(*func);
  // At most three 4KB values live simultaneously.
  EXPECT_LE(peak, 3 * 4096.0);
  EXPECT_GE(peak, 2 * 4096.0);
}

TEST(SimTest, ShardingReducesEstimatedMemoryAndCompute) {
  Chain big = BuildChain(256);
  PartitionContext ctx(big.func, Mesh({{"B", 8}}));
  SpmdModule unsharded = LowerToSpmd(ctx);
  SimEstimate before = EstimateSpmd(unsharded, Tpu_v3());
  ASSERT_TRUE(ctx.TileValue(big.x, 0, "B"));
  ctx.Propagate();
  SpmdModule sharded = LowerToSpmd(ctx);
  OptimizeSpmd(sharded);
  SimEstimate after = EstimateSpmd(sharded, Tpu_v3());
  EXPECT_LT(after.peak_memory_bytes, before.peak_memory_bytes);
  EXPECT_LT(after.compute_seconds, before.compute_seconds);
}

TEST(SimTest, HardwareModelIsDeterministic) {
  Chain chain = BuildChain();
  PartitionContext ctx(chain.func, Mesh({{"B", 4}}));
  ASSERT_TRUE(ctx.TileValue(chain.x, 0, "B"));
  ctx.Propagate();
  SpmdModule spmd = LowerToSpmd(ctx);
  OptimizeSpmd(spmd);
  SimEstimate first = MeasureOnHardwareModel(spmd, Tpu_v3());
  SimEstimate second = MeasureOnHardwareModel(spmd, Tpu_v3());
  EXPECT_DOUBLE_EQ(first.step_seconds, second.step_seconds);
  // Measured peak is below the conservative estimate (App. A.3.2).
  SimEstimate estimate = EstimateSpmd(spmd, Tpu_v3());
  EXPECT_LE(first.peak_memory_bytes, estimate.peak_memory_bytes);
}

TEST(SimTest, MfuDefinition) {
  DeviceSpec device = Tpu_v3();
  // 100 * flops / time / (devices * peak).
  double mfu = Mfu(device.peak_flops, 1.0, 1, device);
  EXPECT_DOUBLE_EQ(mfu, 100.0);
  EXPECT_DOUBLE_EQ(Mfu(device.peak_flops, 2.0, 1, device), 50.0);
}

TEST(AutoPartTest, DiscoversBatchParallelismOnChain) {
  // A compute-heavy chain where batch sharding is the clear win.
  Module module;
  Func* func = module.AddFunc("main");
  Value* x = func->body().AddArg(TensorType({512, 256}), "x");
  std::vector<Value*> weights;
  for (int i = 0; i < 4; ++i) {
    weights.push_back(
        func->body().AddArg(TensorType({256, 256}), StrCat("w", i)));
  }
  OpBuilder builder(&func->body());
  Value* h = x;
  for (Value* w : weights) h = builder.Tanh(builder.MatMul(h, w));
  builder.Return({h});

  PartitionContext ctx(func, Mesh({{"B", 8}}));
  AutoOptions options;
  options.simulations = 24;
  options.max_actions = 2;
  AutoResult result = AutomaticallyPartition(ctx, {"B"}, options);
  ASSERT_FALSE(result.actions.empty());
  // The input batch dim must be sharded.
  EXPECT_TRUE(ctx.state(x).HasAxis("B"));
  EXPECT_EQ(ctx.state(x).DimOfAxis("B"), 0);
  EXPECT_GT(result.evaluations, 0);
}

TEST(AutoPartTest, RespectsMemoryLimit) {
  // With a tiny HBM limit, the unsharded program is penalized and the
  // search must shard something.
  Module module;
  Func* func = module.AddFunc("main");
  Value* x = func->body().AddArg(TensorType({1024, 512}), "x");
  Value* w = func->body().AddArg(TensorType({512, 1024}), "w");
  OpBuilder builder(&func->body());
  builder.Return({builder.MatMul(x, w)});
  PartitionContext ctx(func, Mesh({{"B", 8}}));
  AutoOptions options;
  options.simulations = 16;
  options.max_actions = 2;
  options.device.hbm_bytes = 3e6;  // 3 MB: full tensors do not fit
  AutoResult result = AutomaticallyPartition(ctx, {"B"}, options);
  EXPECT_FALSE(result.actions.empty());
}

TEST(BaselineTest, GspmdResolvesConflictHeuristically) {
  // The Section 5.2.3 conflict: x(dim0) and w1(dim1) seeded on the same
  // axis at once. PartIR refuses; the baseline's cost heuristic picks the
  // factor with the larger tensor (x) and partitions anyway.
  Chain chain = BuildChain(256);
  PartitionContext ctx(chain.func, Mesh({{"B", 4}}));
  GspmdResult result = GspmdPartition(
      ctx, {{"x", 0, "B"}, {"w1", 1, "B"}}, {});
  EXPECT_GT(result.heuristic_resolutions, 0);
  const Operation* mm1 = chain.func->body().ops()[0].get();
  EXPECT_FALSE(ctx.nest(mm1).empty());
}

TEST(BaselineTest, GspmdMinusIgnoresInternalConstraints) {
  Chain chain = BuildChain();
  Module module2;
  // Tag an internal value so a constraint can reference it.
  PartitionContext ctx(chain.func, Mesh({{"B", 4}}));
  GspmdOptions options;
  options.use_internal_constraints = false;
  GspmdResult result = GspmdPartition(
      ctx, {{"x", 0, "B"}}, {{"w1", 1, "B"}}, options);
  // The internal annotation was ignored: w1 is not sharded.
  EXPECT_TRUE(ctx.state(chain.w1).tiles.empty());
}

TEST(BaselineTest, GspmdMatchesPartirOnConflictFreeSchedule) {
  // On a conflict-free BP schedule both systems produce the same counts.
  Chain a = BuildChain();
  PartitionContext partir_ctx(a.func, Mesh({{"B", 4}}));
  PartitionOptions options;
  options.per_tactic_reports = false;
  ManualPartition bp{"BP", {{"x", 0}}, "B"};
  PartitionResult partir = PartirJit(partir_ctx, {bp}, options);

  Chain b = BuildChain();
  PartitionContext gspmd_ctx(b.func, Mesh({{"B", 4}}));
  GspmdResult gspmd = GspmdPartition(gspmd_ctx, {{"x", 0, "B"}}, {});
  CollectiveStats gspmd_stats =
      CountCollectives(*gspmd.spmd.module, gspmd.spmd.mesh);
  EXPECT_EQ(partir.collectives.all_reduce, gspmd_stats.all_reduce);
  EXPECT_EQ(partir.collectives.all_gather, gspmd_stats.all_gather);
}

}  // namespace
}  // namespace partir

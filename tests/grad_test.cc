// Numeric gradient checks for the reverse-mode autodiff substrate, plus an
// end-to-end Adam training-step test (loss decreases).
#include <cmath>

#include <gtest/gtest.h>

#include "src/autodiff/grad.h"
#include "src/interp/interpreter.h"
#include "src/ir/builder.h"
#include "src/ir/verifier.h"

namespace partir {
namespace {

// Central-difference gradient check of d(output0)/d(arg wrt) for a scalar-
// output function.
void CheckGradient(const Func& fwd, Module& module, int wrt, uint64_t seed,
                   float index_modulus = 0.0f, float tolerance = 2e-2f) {
  Func* grad_fn = BuildGradFunc(fwd, module, StrCat("grad_", wrt), {wrt});
  VerifyOrDie(module);
  std::vector<Tensor> inputs = MakeRandomInputs(fwd, seed, index_modulus);
  std::vector<Tensor> outputs = Evaluate(*grad_fn, inputs);
  const Tensor& analytic = outputs.back();

  const float epsilon = 1e-2f;
  Tensor arg = inputs[wrt];
  int64_t checks = std::min<int64_t>(arg.size(), 16);
  for (int64_t i = 0; i < checks; ++i) {
    std::vector<Tensor> plus = inputs;
    std::vector<Tensor> minus = inputs;
    plus[wrt].at(i) += epsilon;
    minus[wrt].at(i) -= epsilon;
    float f_plus = Evaluate(fwd, plus)[0].at(0);
    float f_minus = Evaluate(fwd, minus)[0].at(0);
    float numeric = (f_plus - f_minus) / (2 * epsilon);
    EXPECT_NEAR(analytic.at(i), numeric,
                tolerance * std::max(1.0f, std::fabs(numeric)))
        << "grad element " << i << " of arg " << wrt;
  }
}

TEST(GradTest, MatMulLhsAndRhs) {
  Module module;
  Func* func = module.AddFunc("f");
  Value* x = func->body().AddArg(TensorType({4, 3}), "x");
  Value* w = func->body().AddArg(TensorType({3, 5}), "w");
  OpBuilder builder(&func->body());
  Value* y = builder.MatMul(x, w);
  Value* loss = builder.Reduce(builder.Mul(y, y), {0, 1}, "sum");
  builder.Return({loss});
  CheckGradient(*func, module, 0, 1);
  CheckGradient(*func, module, 1, 2);
}

TEST(GradTest, BatchedDot) {
  Module module;
  Func* func = module.AddFunc("f");
  Value* a = func->body().AddArg(TensorType({2, 3, 4}), "a");
  Value* b = func->body().AddArg(TensorType({2, 4, 3}), "b");
  OpBuilder builder(&func->body());
  Value* y = builder.Dot(a, b, {2}, {1}, {0}, {0});
  Value* loss = builder.Reduce(y, {0, 1, 2}, "sum");
  builder.Return({loss});
  CheckGradient(*func, module, 0, 3);
  CheckGradient(*func, module, 1, 4);
}

TEST(GradTest, DotContractingFirstDim) {
  // Exercises the transpose logic in the dot VJP: contract lhs dim 0.
  Module module;
  Func* func = module.AddFunc("f");
  Value* a = func->body().AddArg(TensorType({3, 4}), "a");
  Value* b = func->body().AddArg(TensorType({3, 5}), "b");
  OpBuilder builder(&func->body());
  Value* y = builder.Dot(a, b, {0}, {0});  // result 4x5
  Value* loss = builder.Reduce(builder.Mul(y, y), {0, 1}, "sum");
  builder.Return({loss});
  CheckGradient(*func, module, 0, 5);
  CheckGradient(*func, module, 1, 6);
}

TEST(GradTest, ElementwiseChain) {
  Module module;
  Func* func = module.AddFunc("f");
  Value* x = func->body().AddArg(TensorType({6}), "x");
  OpBuilder builder(&func->body());
  Value* h = builder.Tanh(builder.MulScalar(x, 0.7));
  Value* e = builder.Exp(builder.MulScalar(h, 0.3));
  Value* s = builder.Logistic(e);
  Value* loss = builder.Reduce(s, {0}, "sum");
  builder.Return({loss});
  CheckGradient(*func, module, 0, 7);
}

TEST(GradTest, DivRsqrtSqrt) {
  Module module;
  Func* func = module.AddFunc("f");
  Value* x = func->body().AddArg(TensorType({5}), "x");
  OpBuilder builder(&func->body());
  Value* pos = builder.AddScalar(builder.Mul(x, x), 1.0);  // > 0
  Value* r = builder.Rsqrt(pos);
  Value* q = builder.Sqrt(pos);
  Value* d = builder.Div(r, q);
  Value* loss = builder.Reduce(d, {0}, "sum");
  builder.Return({loss});
  CheckGradient(*func, module, 0, 8);
}

TEST(GradTest, SoftmaxIsExactDespiteMaxStopGrad) {
  Module module;
  Func* func = module.AddFunc("f");
  Value* x = func->body().AddArg(TensorType({3, 5}), "x");
  OpBuilder builder(&func->body());
  Value* p = builder.Softmax(x);
  // Weighted sum to give a non-trivial gradient.
  Value* w = builder.Iota({3, 5}, 1, DType::kF32);
  Value* loss = builder.Reduce(builder.Mul(p, w), {0, 1}, "sum");
  builder.Return({loss});
  CheckGradient(*func, module, 0, 9);
}

TEST(GradTest, RmsNormGradient) {
  Module module;
  Func* func = module.AddFunc("f");
  Value* x = func->body().AddArg(TensorType({4, 8}), "x");
  Value* scale = func->body().AddArg(TensorType({8}), "scale");
  OpBuilder builder(&func->body());
  Value* normed = builder.RmsNorm(x, scale);
  Value* loss = builder.Reduce(builder.Mul(normed, normed), {0, 1}, "sum");
  builder.Return({loss});
  CheckGradient(*func, module, 0, 10);
  CheckGradient(*func, module, 1, 11);
}

TEST(GradTest, BroadcastAndReduce) {
  Module module;
  Func* func = module.AddFunc("f");
  Value* bias = func->body().AddArg(TensorType({5}), "bias");
  Value* x = func->body().AddArg(TensorType({4, 5}), "x");
  OpBuilder builder(&func->body());
  Value* xb = builder.Add(x, builder.BroadcastInDim(bias, {4, 5}, {1}));
  Value* loss = builder.Reduce(builder.Mul(xb, xb), {0, 1}, "sum");
  builder.Return({loss});
  CheckGradient(*func, module, 0, 12);
}

TEST(GradTest, ConcatenateSplitsGradient) {
  Module module;
  Func* func = module.AddFunc("f");
  Value* a = func->body().AddArg(TensorType({2, 3}), "a");
  Value* b = func->body().AddArg(TensorType({2, 2}), "b");
  OpBuilder builder(&func->body());
  Value* c = builder.Concatenate({a, b}, 1);
  Value* loss = builder.Reduce(builder.Mul(c, c), {0, 1}, "sum");
  builder.Return({loss});
  CheckGradient(*func, module, 0, 13);
  CheckGradient(*func, module, 1, 14);
}

TEST(GradTest, GatherScatterPair) {
  Module module;
  Func* func = module.AddFunc("f");
  Value* table = func->body().AddArg(TensorType({6, 3}), "table");
  Value* ids = func->body().AddArg(TensorType({8}, DType::kS32), "ids");
  OpBuilder builder(&func->body());
  Value* rows = builder.Gather(table, ids);
  Value* loss = builder.Reduce(builder.Mul(rows, rows), {0, 1}, "sum");
  builder.Return({loss});
  CheckGradient(*func, module, 0, 15, /*index_modulus=*/6.0f);
}

TEST(GradTest, ScatterAddGradient) {
  Module module;
  Func* func = module.AddFunc("f");
  Value* updates = func->body().AddArg(TensorType({8, 3}), "updates");
  Value* ids = func->body().AddArg(TensorType({8}, DType::kS32), "ids");
  OpBuilder builder(&func->body());
  Value* scattered = builder.ScatterAdd(ids, updates, 5);
  Value* loss =
      builder.Reduce(builder.Mul(scattered, scattered), {0, 1}, "sum");
  builder.Return({loss});
  CheckGradient(*func, module, 0, 16, /*index_modulus=*/5.0f);
}

TEST(GradTest, ConvolutionGradients) {
  Module module;
  Func* func = module.AddFunc("f");
  Value* img = func->body().AddArg(TensorType({1, 4, 4, 2}), "img");
  Value* filter = func->body().AddArg(TensorType({3, 3, 2, 2}), "filter");
  OpBuilder builder(&func->body());
  Value* out = builder.Convolution(img, filter);
  Value* loss = builder.Reduce(builder.Mul(out, out), {0, 1, 2, 3}, "sum");
  builder.Return({loss});
  CheckGradient(*func, module, 0, 17);
  CheckGradient(*func, module, 1, 18);
}

TEST(GradTest, StridedConvolutionGradients) {
  Module module;
  Func* func = module.AddFunc("f");
  Value* img = func->body().AddArg(TensorType({1, 4, 4, 2}), "img");
  Value* filter = func->body().AddArg(TensorType({3, 3, 2, 2}), "filter");
  OpBuilder builder(&func->body());
  Value* out = builder.Convolution(img, filter, {2, 2});
  Value* loss = builder.Reduce(builder.Mul(out, out), {0, 1, 2, 3}, "sum");
  builder.Return({loss});
  CheckGradient(*func, module, 0, 19);
  CheckGradient(*func, module, 1, 20);
}

TEST(GradTest, TransposeGradient) {
  Module module;
  Func* func = module.AddFunc("f");
  Value* x = func->body().AddArg(TensorType({2, 3, 4}), "x");
  OpBuilder builder(&func->body());
  Value* t = builder.Transpose(x, {2, 0, 1});
  Value* loss = builder.Reduce(builder.Mul(t, t), {0, 1, 2}, "sum");
  builder.Return({loss});
  CheckGradient(*func, module, 0, 21);
}

TEST(GradTest, ReshapeGradient) {
  Module module;
  Func* func = module.AddFunc("f");
  Value* x = func->body().AddArg(TensorType({4, 6}), "x");
  OpBuilder builder(&func->body());
  Value* r = builder.Reshape(x, {2, 12});
  Value* loss = builder.Reduce(builder.Mul(r, r), {0, 1}, "sum");
  builder.Return({loss});
  CheckGradient(*func, module, 0, 22);
}

TEST(GradTest, UnusedArgGetsZeroGradient) {
  Module module;
  Func* func = module.AddFunc("f");
  Value* x = func->body().AddArg(TensorType({3}), "x");
  func->body().AddArg(TensorType({3}), "unused");
  OpBuilder builder(&func->body());
  Value* loss = builder.Reduce(x, {0}, "sum");
  builder.Return({loss});
  Func* grad_fn = BuildGradFunc(*func, module, "g", {1});
  auto out = Evaluate(*grad_fn, MakeRandomInputs(*func, 23));
  EXPECT_EQ(out.back().data(), std::vector<float>({0, 0, 0}));
}

TEST(TrainingStepTest, AdamReducesLossOnLinearRegression) {
  // loss(w, b, x, y) = mean((x @ w + b - y)^2).
  Module module;
  Func* loss_fn = module.AddFunc("loss");
  Value* w = loss_fn->body().AddArg(TensorType({4, 1}), "w");
  Value* b = loss_fn->body().AddArg(TensorType({1}), "b");
  Value* x = loss_fn->body().AddArg(TensorType({16, 4}), "x");
  Value* y = loss_fn->body().AddArg(TensorType({16, 1}), "y");
  OpBuilder builder(&loss_fn->body());
  Value* pred = builder.MatMul(x, w);
  Value* predb = builder.Add(pred, builder.BroadcastInDim(b, {16, 1}, {1}));
  Value* err = builder.Sub(predb, y);
  Value* loss = builder.Mean(builder.Mul(err, err), {0, 1});
  builder.Return({loss});

  AdamConfig config;
  config.learning_rate = 0.05;
  Func* step = BuildTrainingStep(*loss_fn, module, "train_step", 2, config);
  VerifyOrDie(module);

  // Targets from a ground-truth linear model so the optimum loss is ~0.
  Tensor x_data = Tensor::Random({16, 4}, 3);
  Tensor w_true = Tensor::Random({4, 1}, 5);
  Tensor y_data({16, 1});
  for (int i = 0; i < 16; ++i) {
    float acc = 0.25f;  // true bias
    for (int k = 0; k < 4; ++k) {
      acc += x_data.Get({i, k}) * w_true.Get({k, 0});
    }
    y_data.Set({i, 0}, acc);
  }
  // step args: [w, b, m_w, m_b, v_w, v_b, x, y].
  std::vector<Tensor> state = {
      Tensor::Random({4, 1}, 1), Tensor::Random({1}, 2),
      Tensor({4, 1}), Tensor({1}), Tensor({4, 1}), Tensor({1}),
      x_data, y_data};
  float first_loss = -1, last_loss = -1;
  for (int iteration = 0; iteration < 120; ++iteration) {
    std::vector<Tensor> out = Evaluate(*step, state);
    // out: [new_w, new_b, new_m.., new_v.., loss].
    float loss_now = out.back().at(0);
    if (iteration == 0) first_loss = loss_now;
    last_loss = loss_now;
    for (int i = 0; i < 6; ++i) state[i] = out[i];
  }
  EXPECT_LT(last_loss, first_loss * 0.2f)
      << "Adam failed to reduce the loss: " << first_loss << " -> "
      << last_loss;
}

TEST(TrainingStepTest, StepSignatureAndArity) {
  Module module;
  Func* loss_fn = module.AddFunc("loss");
  Value* w = loss_fn->body().AddArg(TensorType({2, 2}), "w");
  Value* x = loss_fn->body().AddArg(TensorType({2, 2}), "x");
  OpBuilder builder(&loss_fn->body());
  Value* y = builder.MatMul(x, w);
  builder.Return({builder.Reduce(y, {0, 1}, "sum")});

  Func* step = BuildTrainingStep(*loss_fn, module, "step", 1);
  // Args: w, m, v, x. Results: new_w, new_m, new_v, loss.
  EXPECT_EQ(step->body().num_args(), 4);
  EXPECT_EQ(step->results().size(), 4u);
  EXPECT_EQ(step->body().arg(1)->name(), "opt_m.w");
  EXPECT_EQ(step->results()[3]->tensor_type().rank(), 0);
}

}  // namespace
}  // namespace partir

// Robustness tests for the persistent compilation cache's storage layer and
// disk tier: entry framing (magic, version, key, checksum), truncated and
// bit-flipped payloads decoding as typed misses (never a crash or a wrong
// result), concurrent writers on one key, the PartitionCache disk tier's
// hit/miss/corrupt/write counters, cross-"process" warm starts via fresh
// caches over one directory, and PARTIR_CACHE_DIR environment configuration.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "src/api/partir.h"
#include "src/api/partition_cache.h"
#include "src/ir/printer.h"
#include "src/persist/serializer.h"
#include "src/persist/store.h"

namespace partir {
namespace {

using persist::DecodeEntry;
using persist::EncodeEntry;
using persist::EntryPath;
using persist::PayloadKind;
using persist::ReadEntry;
using persist::WriteEntry;

/** Unique temp directory removed on scope exit. */
struct ScopedDir {
  explicit ScopedDir(const std::string& tag) {
    static int counter = 0;
    path = (std::filesystem::temp_directory_path() /
            (tag + "." + std::to_string(::getpid()) + "." +
             std::to_string(counter++)))
               .string();
    std::filesystem::create_directories(path);
  }
  ~ScopedDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

Program MakeChain() {
  Program program("main");
  Value* x = program.AddInput(TensorType({16, 8}), "x");
  Value* w1 = program.AddInput(TensorType({8, 12}), "w1");
  Value* w2 = program.AddInput(TensorType({12, 8}), "w2");
  OpBuilder& builder = program.builder();
  program.Return({builder.MatMul(builder.MatMul(x, w1), w2)});
  return program;
}

std::vector<Tactic> BpSchedule() {
  return {ManualPartition{"BP", {{"x", 0}}, "B"}};
}

// ---- Entry framing ----

TEST(PersistStoreTest, EncodeDecodeRoundTrips) {
  std::string payload = "the quick brown payload";
  std::string bytes = EncodeEntry(PayloadKind::kModule, "key-1", payload);
  StatusOr<std::string> decoded =
      DecodeEntry(bytes, PayloadKind::kModule, "key-1");
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, payload);
}

TEST(PersistStoreTest, TruncationIsDataLoss) {
  std::string bytes =
      EncodeEntry(PayloadKind::kModule, "key", "payload-bytes");
  // Every strict prefix must decode as a typed kDataLoss — never a crash.
  for (size_t len : {size_t{0}, size_t{4}, size_t{11}, bytes.size() - 1}) {
    StatusOr<std::string> decoded =
        DecodeEntry(bytes.substr(0, len), PayloadKind::kModule, "key");
    ASSERT_FALSE(decoded.ok()) << "prefix length " << len;
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss)
        << decoded.status().ToString();
  }
}

TEST(PersistStoreTest, FlippedPayloadByteIsDataLoss) {
  std::string bytes = EncodeEntry(PayloadKind::kModule, "key", "payload");
  bytes[bytes.size() - 3] ^= 0x40;  // flip a bit inside the payload
  StatusOr<std::string> decoded =
      DecodeEntry(bytes, PayloadKind::kModule, "key");
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(PersistStoreTest, FlippedChecksumByteIsDataLoss) {
  std::string payload = "payload";
  std::string bytes = EncodeEntry(PayloadKind::kModule, "key", payload);
  // The checksum is the 8 bytes immediately before the payload.
  bytes[bytes.size() - payload.size() - 1] ^= 0x01;
  StatusOr<std::string> decoded =
      DecodeEntry(bytes, PayloadKind::kModule, "key");
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(PersistStoreTest, WrongVersionIsAMissNotDamage) {
  std::string bytes = EncodeEntry(PayloadKind::kModule, "key", "payload");
  bytes[8] ^= 0xFF;  // the format version follows the 8-byte magic
  StatusOr<std::string> decoded =
      DecodeEntry(bytes, PayloadKind::kModule, "key");
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kNotFound);
}

TEST(PersistStoreTest, WrongKindAndWrongKeyAreMisses) {
  std::string bytes = EncodeEntry(PayloadKind::kModule, "key", "payload");
  StatusOr<std::string> wrong_kind =
      DecodeEntry(bytes, PayloadKind::kPartitionResult, "key");
  ASSERT_FALSE(wrong_kind.ok());
  EXPECT_EQ(wrong_kind.status().code(), StatusCode::kNotFound);

  StatusOr<std::string> wrong_key =
      DecodeEntry(bytes, PayloadKind::kModule, "other-key");
  ASSERT_FALSE(wrong_key.ok());
  EXPECT_EQ(wrong_key.status().code(), StatusCode::kNotFound);
}

TEST(PersistStoreTest, BadMagicIsDataLoss) {
  StatusOr<std::string> decoded = DecodeEntry(
      "definitely not a PartIR cache entry", PayloadKind::kModule, "key");
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

// ---- Files ----

TEST(PersistStoreTest, WriteReadEntryRoundTrips) {
  ScopedDir dir("partir-store");
  ASSERT_TRUE(
      WriteEntry(dir.path, PayloadKind::kModule, "key", "payload").ok());
  StatusOr<std::string> read =
      ReadEntry(dir.path, PayloadKind::kModule, "key");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, "payload");
  // No temp files left behind after a successful publish.
  int files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    ++files;
    EXPECT_EQ(entry.path().extension(), ".partir") << entry.path();
  }
  EXPECT_EQ(files, 1);
}

TEST(PersistStoreTest, MissingEntryIsNotFound) {
  ScopedDir dir("partir-store");
  StatusOr<std::string> read =
      ReadEntry(dir.path, PayloadKind::kModule, "absent");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(PersistStoreTest, EntryPathIsStablePerKeyAndDistinctAcrossKeys) {
  EXPECT_EQ(EntryPath("d", "k1"), EntryPath("d", "k1"));
  EXPECT_NE(EntryPath("d", "k1"), EntryPath("d", "k2"));
}

TEST(PersistStoreTest, WriteEntryCreatesTheDirectory) {
  ScopedDir dir("partir-store");
  std::string nested = dir.path + "/a/b";
  ASSERT_TRUE(
      WriteEntry(nested, PayloadKind::kModule, "key", "payload").ok());
  EXPECT_TRUE(ReadEntry(nested, PayloadKind::kModule, "key").ok());
}

TEST(PersistStoreTest, UnwritableDirectoryIsATypedError) {
  Status status = WriteEntry("/proc/definitely-not-writable",
                             PayloadKind::kModule, "key", "payload");
  EXPECT_FALSE(status.ok());  // typed, not an abort
}

// ---- Concurrent writers ----

TEST(PersistStoreTest, ConcurrentWritersNeverYieldTornReads) {
  ScopedDir dir("partir-store");
  const std::string key = "contended-key";
  // Writers race distinct payloads onto one key while readers poll: every
  // read must be a clean miss or one of the complete payloads — rename
  // atomicity means a torn/mixed entry can never be observed.
  std::vector<std::string> payloads;
  for (int i = 0; i < 4; ++i) {
    payloads.push_back(std::string(1000 + 100 * i, 'a' + i));
  }
  std::vector<std::thread> writers;
  for (int i = 0; i < 4; ++i) {
    writers.emplace_back([&, i] {
      for (int round = 0; round < 25; ++round) {
        ASSERT_TRUE(WriteEntry(dir.path, PayloadKind::kModule, key,
                               payloads[i])
                        .ok());
      }
    });
  }
  std::atomic<int> valid_reads{0};
  std::thread reader([&] {
    for (int round = 0; round < 200; ++round) {
      StatusOr<std::string> read =
          ReadEntry(dir.path, PayloadKind::kModule, key);
      if (!read.ok()) {
        EXPECT_EQ(read.status().code(), StatusCode::kNotFound)
            << read.status().ToString();
        continue;
      }
      bool known = false;
      for (const std::string& payload : payloads) known |= (*read == payload);
      EXPECT_TRUE(known) << "torn read of " << read->size() << " bytes";
      ++valid_reads;
    }
  });
  for (std::thread& writer : writers) writer.join();
  reader.join();
  EXPECT_GT(valid_reads.load(), 0);
}

// ---- The PartitionCache disk tier ----

TEST(PersistDiskTierTest, RestartedProcessHitsDisk) {
  ScopedDir dir("partir-disk");
  Mesh mesh({{"B", 4}, {"M", 2}});
  PartitionOptions options;
  options.cache_dir = dir.path;

  std::vector<Tensor> cold_outputs;
  std::vector<Tensor> inputs;
  {
    // "Process A": cold compile, persisted on the way out.
    Program program = MakeChain();
    inputs = program.RandomInputs(3);
    Executable exe = program.Partition(BpSchedule(), mesh, options).value();
    cold_outputs = exe.Run(inputs).value();
    PartitionCacheStats stats = program.cache_stats();
    EXPECT_EQ(stats.misses, 1);
    EXPECT_EQ(stats.disk_hits, 0);
    EXPECT_EQ(stats.disk_misses, 1);
    program.partition_cache()->FlushDiskWrites();
    stats = program.cache_stats();
    EXPECT_EQ(stats.disk_writes, 1);
    EXPECT_EQ(stats.disk_write_errors, 0);
  }
  {
    // "Process B": fresh Program + fresh cache, same trace and directory —
    // must be served from disk, bit-identically.
    Program program = MakeChain();
    Executable exe = program.Partition(BpSchedule(), mesh, options).value();
    PartitionCacheStats stats = program.cache_stats();
    EXPECT_EQ(stats.disk_hits, 1);
    EXPECT_EQ(stats.disk_misses, 0);
    EXPECT_EQ(stats.disk_corrupt, 0);
    std::vector<Tensor> warm_outputs = exe.Run(inputs).value();
    ASSERT_EQ(cold_outputs.size(), warm_outputs.size());
    for (size_t i = 0; i < cold_outputs.size(); ++i) {
      EXPECT_EQ(cold_outputs[i].data(), warm_outputs[i].data());
    }
    // The disk hit was promoted into memory: a repeat is an in-memory hit.
    program.Partition(BpSchedule(), mesh, options).value();
    stats = program.cache_stats();
    EXPECT_EQ(stats.hits, 1);
    EXPECT_EQ(stats.disk_hits, 1);
  }
}

TEST(PersistDiskTierTest, CorruptEntryRecompilesCleanly) {
  ScopedDir dir("partir-disk");
  Mesh mesh({{"B", 4}, {"M", 2}});
  PartitionOptions options;
  options.cache_dir = dir.path;

  {
    Program program = MakeChain();
    program.Partition(BpSchedule(), mesh, options).value();
    program.partition_cache()->FlushDiskWrites();
  }
  // Flip a byte in the middle of every stored entry.
  int damaged = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    std::fstream file(entry.path(),
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(0, std::ios::end);
    auto size = static_cast<long>(file.tellg());
    file.seekp(size / 2);
    char byte;
    file.seekg(size / 2);
    file.get(byte);
    byte = static_cast<char>(byte ^ 0x7F);
    file.seekp(size / 2);
    file.put(byte);
    ++damaged;
  }
  ASSERT_GT(damaged, 0);

  // A fresh "process" must detect the damage, count it, and recompile — a
  // successful Partition with correct outputs, never a crash.
  Program program = MakeChain();
  Executable exe = program.Partition(BpSchedule(), mesh, options).value();
  EXPECT_TRUE(exe.Run(program.RandomInputs(5)).ok());
  PartitionCacheStats stats = program.cache_stats();
  EXPECT_EQ(stats.disk_hits, 0);
  EXPECT_EQ(stats.disk_corrupt, 1);
  // And the recompiled result replaces the damaged entry.
  program.partition_cache()->FlushDiskWrites();
  EXPECT_EQ(program.cache_stats().disk_writes, 1);

  Program verify = MakeChain();
  verify.Partition(BpSchedule(), mesh, options).value();
  EXPECT_EQ(verify.cache_stats().disk_hits, 1);
}

TEST(PersistDiskTierTest, TruncatedEntryIsCorrupt) {
  ScopedDir dir("partir-disk");
  Mesh mesh({{"B", 4}, {"M", 2}});
  PartitionOptions options;
  options.cache_dir = dir.path;
  {
    Program program = MakeChain();
    program.Partition(BpSchedule(), mesh, options).value();
    program.partition_cache()->FlushDiskWrites();
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    std::filesystem::resize_file(
        entry.path(), std::filesystem::file_size(entry.path()) / 2);
  }
  Program program = MakeChain();
  ASSERT_TRUE(program.Partition(BpSchedule(), mesh, options).ok());
  EXPECT_EQ(program.cache_stats().disk_corrupt, 1);
}

TEST(PersistDiskTierTest, DiskDisabledWithoutDirectory) {
  // No cache_dir, no PARTIR_CACHE_DIR: all disk counters stay zero.
  ::unsetenv("PARTIR_CACHE_DIR");
  Program program = MakeChain();
  program.Partition(BpSchedule(), Mesh({{"B", 4}, {"M", 2}})).value();
  PartitionCacheStats stats = program.cache_stats();
  EXPECT_EQ(stats.disk_hits, 0);
  EXPECT_EQ(stats.disk_misses, 0);
  EXPECT_EQ(stats.disk_writes, 0);
}

TEST(PersistDiskTierTest, EnvironmentVariableEnablesTheTier) {
  ScopedDir dir("partir-disk-env");
  ASSERT_EQ(::setenv("PARTIR_CACHE_DIR", dir.path.c_str(), 1), 0);
  Mesh mesh({{"B", 4}, {"M", 2}});
  {
    Program program = MakeChain();
    program.Partition(BpSchedule(), mesh).value();
    EXPECT_EQ(program.cache_stats().disk_misses, 1);
    program.partition_cache()->FlushDiskWrites();
    EXPECT_EQ(program.cache_stats().disk_writes, 1);
  }
  {
    Program program = MakeChain();
    program.Partition(BpSchedule(), mesh).value();
    EXPECT_EQ(program.cache_stats().disk_hits, 1);
  }
  ::unsetenv("PARTIR_CACHE_DIR");
  EXPECT_EQ(persist::ResolveCacheDir(""), "");
  EXPECT_EQ(persist::ResolveCacheDir("/explicit"), "/explicit");
}

TEST(PersistDiskTierTest, ConcurrentProcessesShareOneDirectory) {
  // Several caches (process stand-ins) race the same key on one directory:
  // every Partition must succeed, nothing may ever decode as corrupt, and
  // at least the leaders' writes land.
  ScopedDir dir("partir-disk-race");
  Mesh mesh({{"B", 4}, {"M", 2}});
  PartitionOptions options;
  options.cache_dir = dir.path;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  std::atomic<long> corrupt{0};
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      for (int round = 0; round < 3; ++round) {
        Program program = MakeChain();
        if (!program.Partition(BpSchedule(), mesh, options).ok()) {
          ++failures;
        }
        program.partition_cache()->FlushDiskWrites();
        corrupt += program.cache_stats().disk_corrupt;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(corrupt.load(), 0);

  Program program = MakeChain();
  program.Partition(BpSchedule(), mesh, options).value();
  EXPECT_EQ(program.cache_stats().disk_hits, 1);
}

// ---- Facade error paths ----

TEST(PersistFacadeTest, LoadMissingFileIsNotFound) {
  StatusOr<Program> loaded = Program::Load("/nonexistent/path/program.bin");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(PersistFacadeTest, LoadGarbageFileIsDataLoss) {
  ScopedDir dir("partir-facade");
  std::string path = dir.path + "/garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a serialized program at all, not even close";
  }
  StatusOr<Program> loaded = Program::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST(PersistFacadeTest, LoadRejectsAPartitionResultFile) {
  ScopedDir dir("partir-facade");
  std::string path = dir.path + "/result.bin";
  Program program = MakeChain();
  Executable exe =
      program.Partition(BpSchedule(), Mesh({{"B", 4}, {"M", 2}})).value();
  ASSERT_TRUE(exe.SaveResult(path).ok());
  StatusOr<Program> loaded = Program::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);  // foreign kind
}

TEST(PersistFacadeTest, CorruptPartitionResultPayloadIsTyped) {
  // Damage *inside* a valid frame: the checksum passes framing but the
  // payload decode must still fail typed (never crash) — exercised by
  // fuzzing the structural deserializer directly with truncations.
  Program program = MakeChain();
  PartitionContext ctx(program.func(), Mesh({{"B", 4}, {"M", 2}}));
  PartitionOptions options;
  options.capture_stages = true;
  std::string payload = persist::SerializePartitionResult(
      PartirJitOrError(ctx, BpSchedule(), options).value());
  for (size_t fraction = 1; fraction < 8; ++fraction) {
    std::string truncated =
        payload.substr(0, payload.size() * fraction / 8);
    StatusOr<PartitionResult> restored =
        persist::DeserializePartitionResult(truncated);
    ASSERT_FALSE(restored.ok());
    EXPECT_EQ(restored.status().code(), StatusCode::kDataLoss)
        << "fraction " << fraction << ": " << restored.status().ToString();
  }
}

}  // namespace
}  // namespace partir

// Tests for the exec memory planner in isolation: liveness intervals over
// the flat instruction stream, slot reuse never overlapping live ranges,
// in-place legality (refused when the operand is read again later or
// returned), size-class reuse across shapes, and plan determinism.
#include <gtest/gtest.h>

#include "src/exec/memory_planner.h"
#include "src/ir/builder.h"
#include "src/ir/ir.h"

namespace partir {
namespace {

using exec::MemoryPlan;
using exec::PlanMemory;
using exec::ValuePlan;

// A module wrapping one hand-built flat function.
struct TestFunc {
  Module module;
  Func* func = nullptr;
  OpBuilder builder;

  TestFunc() : func(module.AddFunc("main")), builder(&func->body()) {}

  Value* Arg(std::vector<int64_t> dims, const std::string& name) {
    return func->body().AddArg(TensorType(std::move(dims)), name);
  }
};

const ValuePlan& PlanOf(const MemoryPlan& plan, const Value* value) {
  return plan.values[plan.IndexOf(value)];
}

// The planner's core safety invariant: two values sharing a slot must have
// disjoint live intervals, touching only at an in-place handoff (where the
// dying operand's last_use is the adopting result's def).
void ExpectNoLiveOverlap(const MemoryPlan& plan) {
  for (size_t i = 0; i < plan.values.size(); ++i) {
    for (size_t j = i + 1; j < plan.values.size(); ++j) {
      const ValuePlan& a = plan.values[i];
      const ValuePlan& b = plan.values[j];
      if (a.slot != b.slot) continue;
      int a_start = std::max(a.def, 0), b_start = std::max(b.def, 0);
      if (a.last_use < a_start || b.last_use < b_start) continue;  // unused
      const ValuePlan& first = a_start <= b_start ? a : b;
      const ValuePlan& second = a_start <= b_start ? b : a;
      int second_start = std::max(second.def, 0);
      EXPECT_LE(first.last_use, second_start)
          << "slot " << a.slot << " live ranges overlap: '"
          << first.value->name() << "' and '" << second.value->name() << "'";
      if (first.last_use == second_start) {
        EXPECT_TRUE(second.in_place)
            << "slot " << a.slot << " handed from '" << first.value->name()
            << "' to '" << second.value->name() << "' without in-place";
      }
    }
  }
}

TEST(ExecPlanTest, LivenessIntervalsOfAChain) {
  TestFunc tf;
  Value* x = tf.Arg({4, 4}, "x");
  Value* y = tf.builder.Neg(x);      // instruction 0
  Value* z = tf.builder.Exp(y);      // instruction 1
  tf.builder.Return({z});

  MemoryPlan plan = PlanMemory(*tf.func);
  EXPECT_EQ(plan.num_instructions, 2);
  EXPECT_EQ(PlanOf(plan, x).def, -1);
  EXPECT_EQ(PlanOf(plan, x).last_use, 0);
  EXPECT_EQ(PlanOf(plan, y).def, 0);
  EXPECT_EQ(PlanOf(plan, y).last_use, 1);
  // Returned values live past the last instruction (never reclaimed).
  EXPECT_EQ(PlanOf(plan, z).def, 1);
  EXPECT_EQ(PlanOf(plan, z).last_use, 2);
  ExpectNoLiveOverlap(plan);
}

TEST(ExecPlanTest, ElementwiseChainRunsInPlace) {
  TestFunc tf;
  Value* x = tf.Arg({8}, "x");
  Value* y = tf.builder.Neg(x);   // x dies here -> in place
  Value* z = tf.builder.Tanh(y);  // y dies here -> in place
  tf.builder.Return({z});

  MemoryPlan plan = PlanMemory(*tf.func);
  EXPECT_TRUE(PlanOf(plan, y).in_place);
  EXPECT_TRUE(PlanOf(plan, z).in_place);
  EXPECT_EQ(PlanOf(plan, y).slot, PlanOf(plan, x).slot);
  EXPECT_EQ(PlanOf(plan, z).slot, PlanOf(plan, x).slot);
  EXPECT_EQ(plan.slot_numels.size(), 1u);  // the whole chain in one buffer
  EXPECT_EQ(plan.in_place_ops, 2);
  ExpectNoLiveOverlap(plan);
}

TEST(ExecPlanTest, InPlaceRefusedWhenOperandHasLaterUse) {
  TestFunc tf;
  Value* x = tf.Arg({8}, "x");
  Value* y = tf.builder.Neg(x);       // x is read again below: no in-place
  Value* z = tf.builder.Add(y, x);    // now y and x both die: in-place on y
  tf.builder.Return({z});

  MemoryPlan plan = PlanMemory(*tf.func);
  EXPECT_FALSE(PlanOf(plan, y).in_place);
  EXPECT_NE(PlanOf(plan, y).slot, PlanOf(plan, x).slot);
  EXPECT_TRUE(PlanOf(plan, z).in_place);
  EXPECT_EQ(PlanOf(plan, z).slot, PlanOf(plan, y).slot);
  ExpectNoLiveOverlap(plan);
}

TEST(ExecPlanTest, InPlaceRefusedWhenOperandIsReturned) {
  TestFunc tf;
  Value* x = tf.Arg({8}, "x");
  Value* y = tf.builder.Neg(x);
  tf.builder.Return({y, x});  // x outlives everything: Neg may not claim it

  MemoryPlan plan = PlanMemory(*tf.func);
  EXPECT_FALSE(PlanOf(plan, y).in_place);
  EXPECT_NE(PlanOf(plan, y).slot, PlanOf(plan, x).slot);
  EXPECT_EQ(PlanOf(plan, x).last_use, plan.num_instructions);
  ExpectNoLiveOverlap(plan);
}

TEST(ExecPlanTest, DeadSlotsAreReusedAcrossShapesOfEqualSize) {
  // Two disjoint chains through differently-shaped same-numel values: the
  // second chain's buffers come from the first chain's freed slots.
  TestFunc tf;
  Value* a = tf.Arg({4, 4}, "a");
  Value* b = tf.Arg({16}, "b");
  Value* t1 = tf.builder.MatMul(a, a);          // non-elementwise: fresh slot
  Value* t2 = tf.builder.Reshape(t1, {16});     // fresh slot; t1 dies
  Value* t3 = tf.builder.Add(t2, b);            // in-place over t2
  tf.builder.Return({t3});

  MemoryPlan plan = PlanMemory(*tf.func);
  EXPECT_FALSE(PlanOf(plan, t1).in_place);
  // t2 (shape [16]) reuses nothing in-place (reshape copies), but after t1
  // dies its 16-element slot is free for any later same-size value.
  EXPECT_TRUE(PlanOf(plan, t3).in_place);
  EXPECT_LT(plan.arena_bytes, plan.unplanned_bytes);
  ExpectNoLiveOverlap(plan);

  // Values outnumber slots: reuse happened.
  EXPECT_LT(plan.slot_numels.size(), plan.values.size());
}

TEST(ExecPlanTest, LongChainArenaStaysFlat) {
  // A deep non-elementwise chain (dot with itself each step keeps operands
  // alive one step) must not grow the arena linearly with depth.
  TestFunc tf;
  Value* x = tf.Arg({8, 8}, "x");
  Value* cur = x;
  for (int i = 0; i < 20; ++i) cur = tf.builder.MatMul(cur, x);
  tf.builder.Return({cur});

  MemoryPlan plan = PlanMemory(*tf.func);
  // x plus two rotating dot buffers.
  EXPECT_LE(plan.slot_numels.size(), 3u);
  EXPECT_GE(plan.slots_reused, 18);
  EXPECT_LT(plan.arena_bytes, plan.unplanned_bytes / 5);
  ExpectNoLiveOverlap(plan);
}

TEST(ExecPlanTest, PeakLiveNeverExceedsArena) {
  TestFunc tf;
  Value* x = tf.Arg({8, 8}, "x");
  Value* y = tf.builder.MatMul(x, x);
  Value* z = tf.builder.Add(y, x);
  tf.builder.Return({tf.builder.Tanh(z)});

  MemoryPlan plan = PlanMemory(*tf.func);
  EXPECT_GT(plan.peak_live_bytes, 0);
  EXPECT_LE(plan.peak_live_bytes, plan.arena_bytes);
  EXPECT_LE(plan.arena_bytes, plan.unplanned_bytes);
}

TEST(ExecPlanTest, PlansAreDeterministic) {
  auto build = [](TestFunc& tf) {
    Value* x = tf.Arg({4, 8}, "x");
    Value* w = tf.Arg({8, 4}, "w");
    Value* h = tf.builder.Tanh(tf.builder.MatMul(x, w));
    Value* g = tf.builder.MatMul(h, tf.builder.Reshape(w, {4, 8}));
    tf.builder.Return({tf.builder.Add(g, g)});
  };
  TestFunc first, second;
  build(first);
  build(second);
  MemoryPlan a = PlanMemory(*first.func);
  MemoryPlan b = PlanMemory(*second.func);
  ASSERT_EQ(a.values.size(), b.values.size());
  for (size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_EQ(a.values[i].slot, b.values[i].slot) << "value " << i;
    EXPECT_EQ(a.values[i].def, b.values[i].def) << "value " << i;
    EXPECT_EQ(a.values[i].last_use, b.values[i].last_use) << "value " << i;
    EXPECT_EQ(a.values[i].in_place, b.values[i].in_place) << "value " << i;
  }
  EXPECT_EQ(a.slot_numels, b.slot_numels);
  EXPECT_EQ(a.arena_bytes, b.arena_bytes);
  EXPECT_EQ(a.peak_live_bytes, b.peak_live_bytes);
}

TEST(ExecPlanTest, UnusedArgumentFreesItsSlotImmediately) {
  TestFunc tf;
  Value* x = tf.Arg({8}, "x");
  tf.Arg({8}, "unused");
  Value* y = tf.builder.Neg(x);  // may claim x in place
  tf.builder.Return({y});

  MemoryPlan plan = PlanMemory(*tf.func);
  // The unused arg still owns a slot (its shard is materialized), but its
  // empty live range never blocks anyone.
  EXPECT_TRUE(PlanOf(plan, y).in_place);
  ExpectNoLiveOverlap(plan);
}

}  // namespace
}  // namespace partir

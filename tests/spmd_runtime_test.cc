// Tests for the async multi-device SPMD runtime: replica-group planning,
// rendezvous collective semantics on 3-axis and asymmetric meshes, typed
// Run errors, and bit-exact agreement between the sequential reference
// walker and the threaded runtime (including capped thread counts and the
// five example workloads).
#include <gtest/gtest.h>

#include <cstring>

#include "src/api/partir.h"
#include "src/interp/interpreter.h"
#include "src/ir/builder.h"
#include "src/models/gns.h"
#include "src/models/schedules.h"
#include "src/models/transformer.h"
#include "src/spmd/collectives.h"
#include "src/spmd/spmd_interpreter.h"

namespace partir {
namespace {

constexpr float kTol = 5e-3f;

// Bit-level comparison (memcmp, not float ==): identical NaN payloads
// compare equal, and any ULP of divergence fails.
void ExpectBitIdentical(const std::vector<Tensor>& a,
                        const std::vector<Tensor>& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].dims(), b[i].dims()) << label << " output " << i;
    EXPECT_EQ(std::memcmp(a[i].data().data(), b[i].data().data(),
                          a[i].data().size() * sizeof(float)),
              0)
        << label << " output " << i << " is not bit-identical";
  }
}

// Runs under the sequential walker, the full threaded runtime, and a
// capped thread count; asserts all three are bit-identical and returns the
// sequential outputs.
std::vector<Tensor> RunAllModes(const Executable& exe,
                                const std::vector<Tensor>& inputs,
                                const std::string& label) {
  RunOptions sequential;
  sequential.num_threads = 1;
  RunOptions threaded;  // default: one thread per device
  RunOptions capped;
  capped.num_threads = 3;
  std::vector<Tensor> seq = exe.Run(inputs, sequential).value();
  ExpectBitIdentical(seq, exe.Run(inputs, threaded).value(),
                     label + " threaded");
  ExpectBitIdentical(seq, exe.Run(inputs, capped).value(),
                     label + " capped(3)");
  return seq;
}

void ExpectMatchesReference(Program& program, const Executable& exe,
                            const std::vector<Tensor>& inputs,
                            const std::string& label) {
  std::vector<Tensor> want = program.Evaluate(inputs).value();
  std::vector<Tensor> got = RunAllModes(exe, inputs, label);
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_LT(Tensor::MaxAbsDiff(want[i], got[i]), kTol)
        << label << " output " << i << " diverged from the reference";
  }
}

// ---- Replica-group planning ----

TEST(CollectiveGroupsTest, ThreeAxisMeshGroups) {
  Mesh mesh({{"B", 2}, {"M", 2}, {"E", 2}});
  CollectiveGroups groups = MakeCollectiveGroups(mesh, {"M", "E"});
  EXPECT_EQ(groups.group_size, 4);
  ASSERT_EQ(groups.groups.size(), 2u);  // one group per B coordinate
  // Devices are row-major over (B, M, E): group 0 holds B=0.
  EXPECT_EQ(groups.groups[0], (std::vector<int64_t>{0, 1, 2, 3}));
  EXPECT_EQ(groups.groups[1], (std::vector<int64_t>{4, 5, 6, 7}));
  // Device 5 = (B=1, M=0, E=1): position M*2+E = 1 in group 1.
  EXPECT_EQ(groups.group_of[5], 1);
  EXPECT_EQ(groups.position_of[5], 1);
  // Moving its M coordinate to 1 lands on position 3 (device 7).
  EXPECT_EQ(groups.PositionWithAxisCoord(1, groups.AxisIndex("M"), 1), 3);
  EXPECT_EQ(groups.CoordOf(3, groups.AxisIndex("M")), 1);
  EXPECT_EQ(groups.CoordOf(3, groups.AxisIndex("E")), 1);
}

TEST(CollectiveGroupsTest, AsymmetricMeshGroups) {
  Mesh mesh({{"B", 3}, {"M", 2}});
  CollectiveGroups groups = MakeCollectiveGroups(mesh, {"B"});
  EXPECT_EQ(groups.group_size, 3);
  ASSERT_EQ(groups.groups.size(), 2u);
  // Device id = B*2 + M; the M=0 group is {0, 2, 4} ordered by B.
  EXPECT_EQ(groups.groups[0], (std::vector<int64_t>{0, 2, 4}));
  EXPECT_EQ(groups.groups[1], (std::vector<int64_t>{1, 3, 5}));
  for (int64_t d = 0; d < 6; ++d) {
    EXPECT_EQ(groups.groups[groups.group_of[d]][groups.position_of[d]], d);
  }
}

// ---- Collective semantics on multi-axis / asymmetric meshes ----

Program BuildChainProgram(int64_t rows, int64_t inner, int64_t hidden) {
  Program program("chain");
  Value* x = program.AddInput(TensorType({rows, inner}), "x");
  Value* w1 = program.AddInput(TensorType({inner, hidden}), "w1");
  Value* w2 = program.AddInput(TensorType({hidden, inner}), "w2");
  OpBuilder& builder = program.builder();
  program.Return({builder.MatMul(builder.MatMul(x, w1), w2)});
  return program;
}

TEST(SpmdRuntimeTest, ThreeAxisMeshFsdpAgreesWithReference) {
  // {B:2, M:2, E:2}: batch parallel over B, Megatron over M, and parameter
  // sharding over E — every device participates in replica groups of three
  // different collectives on a 3-axis mesh.
  Program program = BuildChainProgram(8, 8, 8);
  Mesh mesh({{"B", 2}, {"M", 2}, {"E", 2}});
  std::vector<Tactic> schedule = {
      ManualPartition{"BP", {{"x", 0}}, "B"},
      ManualPartition{"MP", {{"w1", 1}}, "M"},
      ManualPartition{"Z3", {{"w1", 0}, {"w2", 1}}, "E"},
  };
  Executable exe = program.Partition(schedule, mesh).value();
  EXPECT_GE(exe.Collectives().all_reduce, 1);
  ExpectMatchesReference(program, exe, program.RandomInputs(7),
                         "3-axis fsdp");
}

TEST(SpmdRuntimeTest, AsymmetricMeshReduceScatterAgreesWithReference) {
  // {B:3, M:2}: dims divisible by 3; sharding the output over M turns the
  // Megatron all_reduce into a reduce_scatter whose reduction order (3
  // summands over B-agnostic groups) must be identical in both runtimes.
  Program program("chain");
  Value* x = program.AddInput(TensorType({6, 8}), "x");
  Value* w1 = program.AddInput(TensorType({8, 6}), "w1");
  Value* w2 = program.AddInput(TensorType({6, 8}), "w2");
  OpBuilder& builder = program.builder();
  Value* out =
      builder.Tag(builder.MatMul(builder.MatMul(x, w1), w2), "out");
  program.Return({out});
  Mesh mesh({{"B", 3}, {"M", 2}});
  std::vector<Tactic> schedule = {
      ManualPartition{"BP", {{"x", 0}}, "B"},
      ManualPartition{"MP", {{"w1", 1}}, "M"},
      ManualPartition{"ES", {{"out", 1}}, "M"},
  };
  Executable exe = program.Partition(schedule, mesh).value();
  EXPECT_GE(exe.Collectives().reduce_scatter, 1);
  ExpectMatchesReference(program, exe, program.RandomInputs(11),
                         "asymmetric reduce_scatter");
}

TEST(SpmdRuntimeTest, AllToAllRoundTripOnAsymmetricAxis) {
  // Two opposing all_to_alls over a size-3 axis are the identity: the
  // shard dim moves 0 -> 1 -> 0. Exercises the rendezvous all_to_all with
  // positions that differ per device.
  Mesh mesh({{"B", 3}});
  SpmdModule spmd;
  spmd.module = std::make_unique<Module>();
  spmd.mesh = mesh;
  Func* func = spmd.module->AddFunc("main");
  Value* x = func->body().AddArg(TensorType({2, 6}), "x");
  OpBuilder builder(&func->body());
  builder.SetAxisSizeFn(
      [&](const std::string& axis) { return mesh.AxisSize(axis); });
  Value* moved = builder.AllToAll(x, /*slice_dim=*/1, /*concat_dim=*/0, {"B"});
  Value* back = builder.AllToAll(moved, /*slice_dim=*/0, /*concat_dim=*/1,
                                 {"B"});
  builder.Return({back});
  spmd.input_shardings = {ValueSharding{AxesPerDim{{"B"}, {}}}};
  spmd.output_shardings = {ValueSharding{AxesPerDim{{"B"}, {}}}};

  Tensor global = Tensor::Random({6, 6}, 99);
  RunOptions sequential;
  sequential.num_threads = 1;
  std::vector<Tensor> seq = RunSpmd(spmd, {global}, sequential).value();
  std::vector<Tensor> thr = RunSpmd(spmd, {global}).value();
  ExpectBitIdentical(seq, thr, "all_to_all round trip");
  EXPECT_EQ(seq[0].data(), global.data()) << "round trip is not identity";
}

TEST(SpmdRuntimeTest, DeepShardedGatherOnThreeAxisMesh) {
  // One dim sharded by two axes ({M,E}) plus a B-sharded dim: the gather
  // must reassemble chunks with the first-listed axis outermost on every
  // group member identically.
  Mesh mesh({{"B", 2}, {"M", 2}, {"E", 2}});
  SpmdModule spmd;
  spmd.module = std::make_unique<Module>();
  spmd.mesh = mesh;
  Func* func = spmd.module->AddFunc("main");
  Value* x = func->body().AddArg(TensorType({2, 2}), "x");
  OpBuilder builder(&func->body());
  builder.SetAxisSizeFn(
      [&](const std::string& axis) { return mesh.AxisSize(axis); });
  Value* gathered = builder.AllGather(x, AxesPerDim{{"B"}, {"M", "E"}});
  builder.Return({gathered});
  spmd.input_shardings = {ValueSharding{AxesPerDim{{"B"}, {"M", "E"}}}};
  spmd.output_shardings = {ValueSharding{AxesPerDim{{}, {}}}};

  Tensor global = Tensor::Random({4, 8}, 123);
  RunOptions sequential;
  sequential.num_threads = 1;
  std::vector<Tensor> seq = RunSpmd(spmd, {global}, sequential).value();
  std::vector<Tensor> thr = RunSpmd(spmd, {global}).value();
  ExpectBitIdentical(seq, thr, "deep gather");
  EXPECT_EQ(seq[0].data(), global.data()) << "gather lost the global value";
}

// ---- Determinism ----

TEST(SpmdRuntimeTest, ThreadedRunsAreBitStableAcrossRepeats) {
  Program program = BuildChainProgram(6, 8, 6);
  Mesh mesh({{"B", 3}, {"M", 2}});
  Executable exe = program
                       .Partition({ManualPartition{"BP", {{"x", 0}}, "B"},
                                   ManualPartition{"MP", {{"w1", 1}}, "M"}},
                                  mesh)
                       .value();
  std::vector<Tensor> inputs = program.RandomInputs(5);
  std::vector<Tensor> first = exe.Run(inputs).value();
  for (int repeat = 0; repeat < 3; ++repeat) {
    ExpectBitIdentical(first, exe.Run(inputs).value(), "repeat run");
  }
}

TEST(SpmdRuntimeTest, ArrivalOrderReductionStaysWithinTolerance) {
  Program program = BuildChainProgram(8, 8, 8);
  Mesh mesh({{"B", 2}, {"M", 2}, {"E", 2}});
  Executable exe =
      program
          .Partition({ManualPartition{"BP", {{"x", 0}}, "B"},
                      ManualPartition{"MP", {{"w1", 1}}, "M"},
                      ManualPartition{"Z3", {{"w1", 0}, {"w2", 1}}, "E"}},
                     mesh)
          .value();
  std::vector<Tensor> inputs = program.RandomInputs(13);
  RunOptions relaxed;
  relaxed.deterministic = false;
  std::vector<Tensor> want = exe.Run(inputs).value();
  std::vector<Tensor> got = exe.Run(inputs, relaxed).value();
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_LT(Tensor::MaxAbsDiff(want[i], got[i]), 1e-4f);
  }
}

// ---- Typed Run errors (no aborts) ----

TEST(SpmdRuntimeTest, ArityMismatchIsStatusNotAbort) {
  Program program = BuildChainProgram(8, 8, 8);
  Mesh mesh({{"B", 4}});
  Executable exe =
      program.Partition({ManualPartition{"BP", {{"x", 0}}, "B"}}, mesh)
          .value();
  std::vector<Tensor> inputs = program.RandomInputs(3);
  inputs.pop_back();
  StatusOr<std::vector<Tensor>> result = exe.Run(inputs);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SpmdRuntimeTest, ShapeMismatchIsStatusNotAbort) {
  Program program = BuildChainProgram(8, 8, 8);
  Mesh mesh({{"B", 4}});
  Executable exe =
      program.Partition({ManualPartition{"BP", {{"x", 0}}, "B"}}, mesh)
          .value();
  std::vector<Tensor> inputs = program.RandomInputs(3);
  inputs[0] = Tensor({3, 5});
  StatusOr<std::vector<Tensor>> result = exe.Run(inputs);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("input 0"), std::string::npos);
}

TEST(SpmdRuntimeTest, UnshardableGlobalDimIsStatusNotAbort) {
  // RunSpmd itself (below Executable's global-shape validation) must also
  // diagnose inputs whose dims the mesh cannot divide.
  Mesh mesh({{"B", 3}});
  SpmdModule spmd;
  spmd.module = std::make_unique<Module>();
  spmd.mesh = mesh;
  Func* func = spmd.module->AddFunc("main");
  Value* x = func->body().AddArg(TensorType({2, 4}), "x");
  OpBuilder builder(&func->body());
  builder.Return({x});
  spmd.input_shardings = {ValueSharding{AxesPerDim{{"B"}, {}}}};
  spmd.output_shardings = {ValueSharding{AxesPerDim{{"B"}, {}}}};

  StatusOr<std::vector<Tensor>> result = RunSpmd(spmd, {Tensor({7, 4})});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("divisible"), std::string::npos);
}

// ---- The five example workloads, threaded == sequential bit-for-bit ----

TEST(SpmdRuntimeExamplesTest, QuickstartChainBpMpZ3) {
  Program program("main");
  Value* x = program.AddInput(TensorType({256, 8}), "x");
  Value* w1 = program.AddInput(TensorType({8, 16}), "w1");
  Value* w2 = program.AddInput(TensorType({16, 8}), "w2");
  OpBuilder& builder = program.builder();
  program.Return({builder.MatMul(builder.MatMul(x, w1), w2)});
  Mesh mesh({{"B", 4}, {"M", 2}});
  std::vector<Tactic> schedule = {
      ManualPartition{"BP", {{"x", 0}}, "B"},
      ManualPartition{"MP", {{"w1", 1}}, "M"},
      ManualPartition{"Z3", {{"w1", 0}, {"w2", 1}}, "B"},
  };
  Executable exe = program.Partition(schedule, mesh).value();
  ExpectMatchesReference(program, exe, program.RandomInputs(1), "quickstart");
}

TransformerConfig SmallTransformer() {
  TransformerConfig config;
  config.num_layers = 1;
  config.d_model = 16;
  config.num_heads = 2;
  config.head_dim = 8;
  config.ffw_size = 32;
  config.vocab = 32;
  config.batch = 4;
  config.seq = 4;
  return config;
}

TEST(SpmdRuntimeExamplesTest, TransformerTrainingBpMp) {
  TransformerConfig config = SmallTransformer();
  Program program = Program::Capture([&](Module& module) {
    return BuildTransformerTrainingStep(module, config);
  });
  Mesh mesh({{"batch", 2}, {"model", 2}});
  Executable exe =
      program
          .Partition({schedules::TransformerBP(), schedules::TransformerMP()},
                     mesh)
          .value();
  std::vector<Tensor> inputs =
      program.RandomInputs(21, static_cast<float>(config.vocab));
  RunAllModes(exe, inputs, "transformer training");
}

TEST(SpmdRuntimeExamplesTest, TransformerInferenceBp) {
  TransformerConfig config = SmallTransformer();
  Program program = Program::Capture([&](Module& module) {
    return BuildTransformerInference(module, config, /*decode_steps=*/2);
  });
  Mesh mesh({{"batch", 4}});
  Executable exe =
      program.Partition({schedules::InferenceBP()}, mesh).value();
  std::vector<Tensor> inputs =
      program.RandomInputs(22, static_cast<float>(config.vocab));
  RunAllModes(exe, inputs, "transformer inference");
}

TEST(SpmdRuntimeExamplesTest, GnsEdgeSharding) {
  GnsConfig config;
  config.message_steps = 2;
  config.num_edges = 16;
  config.num_nodes = 8;
  Program program = Program::Capture(
      [&](Module& module) { return BuildGnsLoss(module, config); });
  Mesh mesh({{"batch", 4}});
  Executable exe = program.Partition({schedules::GnsES()}, mesh).value();
  std::vector<Tensor> inputs =
      program.RandomInputs(23, static_cast<float>(config.num_nodes));
  RunAllModes(exe, inputs, "gns edge sharding");
}

TEST(SpmdRuntimeExamplesTest, AutomaticPartitioning) {
  Program program = BuildChainProgram(16, 8, 8);
  Mesh mesh({{"B", 4}});
  AutomaticPartition automatic;
  automatic.name = "auto";
  automatic.axes = {"B"};
  automatic.options.simulations = 16;
  Executable exe = program.Partition({automatic}, mesh).value();
  ExpectMatchesReference(program, exe, program.RandomInputs(24),
                         "automatic partitioning");
}

}  // namespace
}  // namespace partir

// Numerical tests for the reference interpreter, including the sequential
// semantics of PartIR:Core loops (the paper's Figure 13 denotations).
#include <cmath>

#include <gtest/gtest.h>

#include "src/interp/interpreter.h"
#include "src/ir/builder.h"

namespace partir {
namespace {

constexpr float kTol = 1e-4f;

// Builds a single-op function and evaluates it on the given inputs.
template <typename BuildFn>
std::vector<Tensor> RunProgram(std::vector<TensorType> arg_types,
                               const std::vector<Tensor>& inputs,
                               BuildFn build) {
  Module module;
  Func* func = module.AddFunc("main");
  std::vector<Value*> args;
  for (size_t i = 0; i < arg_types.size(); ++i) {
    args.push_back(
        func->body().AddArg(arg_types[i], StrCat("a", i)));
  }
  OpBuilder builder(&func->body());
  std::vector<Value*> results = build(builder, args);
  builder.Return(results);
  return Evaluate(*func, inputs);
}

TEST(InterpreterTest, ElementwiseBinary) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {10, 20, 30, 40});
  auto out = RunProgram({TensorType({2, 2}), TensorType({2, 2})}, {a, b},
                        [](OpBuilder& builder, std::vector<Value*> args) {
                          return std::vector<Value*>{
                              builder.Add(args[0], args[1])};
                        });
  EXPECT_EQ(out[0].data(), std::vector<float>({11, 22, 33, 44}));
}

TEST(InterpreterTest, UnaryMath) {
  Tensor a({3}, {0.0f, 1.0f, 4.0f});
  auto out = RunProgram({TensorType({3})}, {a},
                        [](OpBuilder& builder, std::vector<Value*> args) {
                          return std::vector<Value*>{builder.Sqrt(args[0])};
                        });
  EXPECT_NEAR(out[0].at(0), 0.0f, kTol);
  EXPECT_NEAR(out[0].at(1), 1.0f, kTol);
  EXPECT_NEAR(out[0].at(2), 2.0f, kTol);
}

TEST(InterpreterTest, MatMul2x2) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {5, 6, 7, 8});
  auto out = RunProgram({TensorType({2, 2}), TensorType({2, 2})}, {a, b},
                        [](OpBuilder& builder, std::vector<Value*> args) {
                          return std::vector<Value*>{
                              builder.MatMul(args[0], args[1])};
                        });
  EXPECT_EQ(out[0].data(), std::vector<float>({19, 22, 43, 50}));
}

TEST(InterpreterTest, DotWithBatchDims) {
  // Batched matmul [2,2,3] x [2,3,2] over batch dim 0.
  Tensor a = Tensor::Random({2, 2, 3}, 1);
  Tensor b = Tensor::Random({2, 3, 2}, 2);
  auto out = RunProgram(
      {TensorType({2, 2, 3}), TensorType({2, 3, 2})}, {a, b},
      [](OpBuilder& builder, std::vector<Value*> args) {
        return std::vector<Value*>{
            builder.Dot(args[0], args[1], {2}, {1}, {0}, {0})};
      });
  EXPECT_EQ(out[0].dims(), std::vector<int64_t>({2, 2, 2}));
  // Check one element by hand: out[1,0,1] = sum_k a[1,0,k]*b[1,k,1].
  float expect = 0;
  for (int k = 0; k < 3; ++k) {
    expect += a.Get({1, 0, k}) * b.Get({1, k, 1});
  }
  EXPECT_NEAR(out[0].Get({1, 0, 1}), expect, kTol);
}

TEST(InterpreterTest, TransposeReduce) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  auto out = RunProgram(
      {TensorType({2, 3})}, {a},
      [](OpBuilder& builder, std::vector<Value*> args) {
        Value* t = builder.Transpose(args[0], {1, 0});   // 3x2
        Value* r = builder.Reduce(t, {1}, "sum");        // 3
        Value* m = builder.Reduce(args[0], {0}, "max");  // 3
        return std::vector<Value*>{r, m};
      });
  EXPECT_EQ(out[0].data(), std::vector<float>({5, 7, 9}));
  EXPECT_EQ(out[1].data(), std::vector<float>({4, 5, 6}));
}

TEST(InterpreterTest, BroadcastInDim) {
  Tensor a({2}, {7, 9});
  auto out = RunProgram(
      {TensorType({2})}, {a},
      [](OpBuilder& builder, std::vector<Value*> args) {
        return std::vector<Value*>{
            builder.BroadcastInDim(args[0], {2, 3}, {0})};
      });
  EXPECT_EQ(out[0].data(), std::vector<float>({7, 7, 7, 9, 9, 9}));
}

TEST(InterpreterTest, ConcatAndStaticSlice) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {5, 6, 7, 8});
  auto out = RunProgram(
      {TensorType({2, 2}), TensorType({2, 2})}, {a, b},
      [](OpBuilder& builder, std::vector<Value*> args) {
        Value* c = builder.Concatenate({args[0], args[1]}, 1);  // 2x4
        Value* s = builder.StaticSlice(c, {0, 1}, {2, 3});      // 2x2
        return std::vector<Value*>{s};
      });
  EXPECT_EQ(out[0].data(), std::vector<float>({2, 5, 4, 7}));
}

TEST(InterpreterTest, GatherRows) {
  Tensor table({3, 2}, {0, 1, 10, 11, 20, 21});
  Tensor ids({2}, {2, 0});
  auto out = RunProgram(
      {TensorType({3, 2}), TensorType({2}, DType::kS32)}, {table, ids},
      [](OpBuilder& builder, std::vector<Value*> args) {
        return std::vector<Value*>{builder.Gather(args[0], args[1])};
      });
  EXPECT_EQ(out[0].data(), std::vector<float>({20, 21, 0, 1}));
}

TEST(InterpreterTest, ScatterAddAccumulates) {
  Tensor ids({3}, {1, 1, 0});
  Tensor updates({3, 2}, {1, 2, 3, 4, 5, 6});
  auto out = RunProgram(
      {TensorType({3}, DType::kS32), TensorType({3, 2})}, {ids, updates},
      [](OpBuilder& builder, std::vector<Value*> args) {
        return std::vector<Value*>{builder.ScatterAdd(args[0], args[1], 2)};
      });
  EXPECT_EQ(out[0].data(), std::vector<float>({5, 6, 4, 6}));
}

TEST(InterpreterTest, SoftmaxRowsSumToOne) {
  Tensor a = Tensor::Random({4, 6}, 3);
  auto out = RunProgram({TensorType({4, 6})}, {a},
                        [](OpBuilder& builder, std::vector<Value*> args) {
                          return std::vector<Value*>{
                              builder.Softmax(args[0])};
                        });
  for (int row = 0; row < 4; ++row) {
    float sum = 0;
    for (int col = 0; col < 6; ++col) sum += out[0].Get({row, col});
    EXPECT_NEAR(sum, 1.0f, kTol);
  }
}

TEST(InterpreterTest, ConvolutionIdentityFilter) {
  // 1x1 identity filter preserves the image.
  Tensor img = Tensor::Random({1, 4, 4, 1}, 5);
  Tensor filter({1, 1, 1, 1}, {1.0f});
  auto out = RunProgram(
      {TensorType({1, 4, 4, 1}), TensorType({1, 1, 1, 1})}, {img, filter},
      [](OpBuilder& builder, std::vector<Value*> args) {
        return std::vector<Value*>{
            builder.Convolution(args[0], args[1])};
      });
  EXPECT_LT(Tensor::MaxAbsDiff(out[0], img), kTol);
}

TEST(InterpreterTest, ConvolutionSamePaddingSums) {
  // All-ones 3x3 filter over an all-ones image: interior pixels get 9,
  // corners 4, edges 6.
  Tensor img({1, 3, 3, 1}, std::vector<float>(9, 1.0f));
  Tensor filter({3, 3, 1, 1}, std::vector<float>(9, 1.0f));
  auto out = RunProgram(
      {TensorType({1, 3, 3, 1}), TensorType({3, 3, 1, 1})}, {img, filter},
      [](OpBuilder& builder, std::vector<Value*> args) {
        return std::vector<Value*>{
            builder.Convolution(args[0], args[1])};
      });
  EXPECT_NEAR(out[0].Get({0, 1, 1, 0}), 9.0f, kTol);
  EXPECT_NEAR(out[0].Get({0, 0, 0, 0}), 4.0f, kTol);
  EXPECT_NEAR(out[0].Get({0, 0, 1, 0}), 6.0f, kTol);
}

TEST(InterpreterTest, StridedConvolutionShape) {
  Tensor img = Tensor::Random({1, 4, 4, 2}, 7);
  Tensor filter = Tensor::Random({3, 3, 2, 3}, 8);
  auto out = RunProgram(
      {TensorType({1, 4, 4, 2}), TensorType({3, 3, 2, 3})}, {img, filter},
      [](OpBuilder& builder, std::vector<Value*> args) {
        return std::vector<Value*>{
            builder.Convolution(args[0], args[1], {2, 2})};
      });
  EXPECT_EQ(out[0].dims(), std::vector<int64_t>({1, 2, 2, 3}));
}

// The sequential loop semantics: a tile loop over slices reconstitutes the
// original computation (Figure 4, first equivalence).
TEST(InterpreterTest, TileLoopEqualsUnpartitioned) {
  Tensor x = Tensor::Random({8, 4}, 11);
  Tensor w = Tensor::Random({4, 6}, 12);

  Module module;
  Func* func = module.AddFunc("main");
  Value* xa = func->body().AddArg(TensorType({8, 4}), "x");
  Value* wa = func->body().AddArg(TensorType({4, 6}), "w");
  OpBuilder builder(&func->body());
  Operation* loop = builder.Loop("B", 4, "tile", 0, TensorType({8, 6}));
  Block& body = loop->region(0).block();
  OpBuilder inner(&body);
  Value* xs = inner.PSlice(xa, body.arg(0), 0);
  Value* part = inner.MatMul(xs, wa);
  inner.Yield(&body, {part});
  builder.Return({loop->result()});

  auto got = Evaluate(*func, {x, w});

  // Reference: plain matmul.
  Module ref_module;
  Func* ref = ref_module.AddFunc("main");
  Value* rx = ref->body().AddArg(TensorType({8, 4}), "x");
  Value* rw = ref->body().AddArg(TensorType({4, 6}), "w");
  OpBuilder ref_builder(&ref->body());
  ref_builder.Return({ref_builder.MatMul(rx, rw)});
  auto want = Evaluate(*ref, {x, w});

  EXPECT_LT(Tensor::MaxAbsDiff(got[0], want[0]), kTol);
}

// A #sum loop over contracting-dim slices equals the full matmul
// (Figure 4, third equivalence).
TEST(InterpreterTest, SumLoopEqualsUnpartitioned) {
  Tensor x = Tensor::Random({8, 4}, 21);
  Tensor w = Tensor::Random({4, 6}, 22);

  Module module;
  Func* func = module.AddFunc("main");
  Value* xa = func->body().AddArg(TensorType({8, 4}), "x");
  Value* wa = func->body().AddArg(TensorType({4, 6}), "w");
  OpBuilder builder(&func->body());
  Operation* loop = builder.Loop("M", 2, "sum", -1, TensorType({8, 6}));
  Block& body = loop->region(0).block();
  OpBuilder inner(&body);
  Value* xs = inner.PSlice(xa, body.arg(0), 1);
  Value* ws = inner.PSlice(wa, body.arg(0), 0);
  inner.Yield(&body, {inner.MatMul(xs, ws)});
  builder.Return({loop->result()});

  auto got = Evaluate(*func, {x, w});

  Module ref_module;
  Func* ref = ref_module.AddFunc("main");
  Value* rx = ref->body().AddArg(TensorType({8, 4}), "x");
  Value* rw = ref->body().AddArg(TensorType({4, 6}), "w");
  OpBuilder ref_builder(&ref->body());
  ref_builder.Return({ref_builder.MatMul(rx, rw)});
  auto want = Evaluate(*ref, {x, w});

  EXPECT_LT(Tensor::MaxAbsDiff(got[0], want[0]), kTol);
}

// An [any] loop evaluates its body once: all iterations are equal.
TEST(InterpreterTest, AnyLoopIsIdentity) {
  Tensor x = Tensor::Random({4, 4}, 31);
  Module module;
  Func* func = module.AddFunc("main");
  Value* xa = func->body().AddArg(TensorType({4, 4}), "x");
  OpBuilder builder(&func->body());
  Operation* loop = builder.Loop("M", 2, "any", -1, TensorType({4, 4}));
  Block& body = loop->region(0).block();
  OpBuilder inner(&body);
  inner.Yield(&body, {xa});
  builder.Return({loop->result()});
  auto got = Evaluate(*func, {x});
  EXPECT_LT(Tensor::MaxAbsDiff(got[0], x), kTol);
}

TEST(TensorTest, SliceChunkAndConcatRoundTrip) {
  Tensor x = Tensor::Random({6, 4}, 41);
  std::vector<Tensor> chunks;
  for (int i = 0; i < 3; ++i) chunks.push_back(x.SliceChunk(0, i, 3));
  EXPECT_EQ(chunks[0].dims(), std::vector<int64_t>({2, 4}));
  Tensor back = Tensor::Concat(chunks, 0);
  EXPECT_LT(Tensor::MaxAbsDiff(back, x), 1e-6f);
}

TEST(TensorTest, RandomIsDeterministic) {
  Tensor a = Tensor::Random({16}, 7);
  Tensor b = Tensor::Random({16}, 7);
  Tensor c = Tensor::Random({16}, 8);
  EXPECT_EQ(a.data(), b.data());
  EXPECT_NE(a.data(), c.data());
}

TEST(InterpreterTest, IotaAlongDims) {
  auto out = RunProgram({}, {},
                        [](OpBuilder& builder, std::vector<Value*>) {
                          return std::vector<Value*>{
                              builder.Iota({2, 3}, 1)};
                        });
  EXPECT_EQ(out[0].data(), std::vector<float>({0, 1, 2, 0, 1, 2}));
}

TEST(InterpreterTest, MakeRandomInputsRespectsIndexModulus) {
  Module module;
  Func* func = module.AddFunc("main");
  func->body().AddArg(TensorType({32}, DType::kS32), "ids");
  OpBuilder builder(&func->body());
  builder.Return({builder.Constant(0.0, {})});
  auto inputs = MakeRandomInputs(*func, 1, /*index_modulus=*/10.0f);
  for (int64_t i = 0; i < inputs[0].size(); ++i) {
    EXPECT_GE(inputs[0].at(i), 0.0f);
    EXPECT_LT(inputs[0].at(i), 10.0f);
    EXPECT_EQ(inputs[0].at(i), std::floor(inputs[0].at(i)));
  }
}

}  // namespace
}  // namespace partir

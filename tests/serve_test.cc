// Concurrency stress tests for the serving batcher: mixed-shape traffic
// from many producer threads, bit-identical outputs vs unbatched sequential
// Run, per-request error isolation, deadline expiry, live schedule swaps,
// and clean shutdown with in-flight requests. This suite runs under the
// ThreadSanitizer CI job — the rendezvous runtime, the single-flight
// partition cache and the batcher's queues are all exercised concurrently.
#include <gtest/gtest.h>

#include <chrono>
#include <random>
#include <thread>

#include "src/models/serving.h"
#include "src/serve/batcher.h"
#include "src/support/mpmc_queue.h"

namespace partir {
namespace {

using Micros = std::chrono::microseconds;

// ---- The mixed-shape serving family ----
//
// Three shape classes over one schedule/mesh (same schedule keys resolve in
// each class): a 4-row and an 8-row matmul chain plus a tanh MLP. An
// unknown key is a typed error that must fail only its own requests.

Func* BuildChainRows(Module& module, int64_t rows, int64_t batch) {
  Func* func = module.AddFunc("chain");
  Block& body = func->body();
  Value* x = body.AddArg(TensorType({batch * rows, 8}), "x");
  Value* w1 = body.AddArg(TensorType({8, 16}), "w1");
  Value* w2 = body.AddArg(TensorType({16, 8}), "w2");
  OpBuilder builder(&body);
  builder.Return({builder.MatMul(builder.MatMul(x, w1), w2)});
  return func;
}

Func* BuildDeep(Module& module, int64_t batch) {
  Func* func = module.AddFunc("deep");
  Block& body = func->body();
  Value* x = body.AddArg(TensorType({batch * 4, 8}), "x");
  Value* w1 = body.AddArg(TensorType({8, 16}), "w1");
  Value* w2 = body.AddArg(TensorType({16, 8}), "w2");
  OpBuilder builder(&body);
  Value* hidden = builder.Tanh(builder.MatMul(x, w1));
  builder.Return({builder.MatMul(hidden, w2)});
  return func;
}

StatusOr<Program> MixedFactory(const std::string& key, int64_t batch) {
  if (key == "rows4") {
    return Program::Capture(
        [batch](Module& m) { return BuildChainRows(m, 4, batch); });
  }
  if (key == "rows8") {
    return Program::Capture(
        [batch](Module& m) { return BuildChainRows(m, 8, batch); });
  }
  if (key == "deep") {
    return Program::Capture(
        [batch](Module& m) { return BuildDeep(m, batch); });
  }
  return NotFoundError("unknown shape class '", key, "'");
}

std::vector<Tactic> MixedSchedule() {
  return {ManualPartition{"BP", {{"x", 0}}, "B"},
          ManualPartition{"MP", {{"w1", 1}}, "M"}};
}

Mesh MixedMesh() { return Mesh({{"B", 4}, {"M", 2}}); }

/** Unit-request inputs for a class: shared weights (seed 0), per-seed x. */
std::vector<Tensor> MixedRequest(const std::string& key, uint64_t seed) {
  int64_t rows = key == "rows8" ? 8 : 4;
  Tensor x = Tensor::Random({rows, 8}, seed);
  Tensor w1 = Tensor::Random({8, 16}, 1);
  Tensor w2 = Tensor::Random({16, 8}, 2);
  return {x, w1, w2};
}

/** Unbatched sequential reference for one request of a class. */
std::vector<Tensor> MixedReference(const std::string& key,
                                   const std::vector<Tensor>& inputs) {
  Program unit = MixedFactory(key, 1).value();
  Executable exe = unit.Partition(MixedSchedule(), MixedMesh()).value();
  RunOptions sequential;
  sequential.num_threads = 1;
  return exe.Run(inputs, sequential).value();
}

bool BitIdentical(const std::vector<Tensor>& a, const std::vector<Tensor>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].dims() != b[i].dims() || a[i].data() != b[i].data()) return false;
  }
  return true;
}

// ---- Stress: N producers x mixed shape classes x random delays ----

TEST(ServeStressTest, ConcurrentMixedTrafficMatchesUnbatchedSequentialRun) {
  const std::vector<std::string> kClasses = {"rows4", "rows8", "deep"};
  // Per-class references, computed once per seed pool up front.
  const int kProducers = 6;
  const int kPerProducer = 12;
  std::map<std::string, std::vector<std::vector<Tensor>>> want;
  std::map<std::string, std::vector<std::vector<Tensor>>> requests;
  for (const std::string& key : kClasses) {
    for (int s = 0; s < kProducers * kPerProducer; ++s) {
      requests[key].push_back(MixedRequest(key, 100 + s));
      want[key].push_back(MixedReference(key, requests[key].back()));
    }
  }

  BatchOptions options;
  options.max_batch = 5;
  options.max_delay_us = 500;
  options.max_inflight = 3;
  Batcher batcher(MixedFactory, MixedSchedule(), MixedMesh(), options);

  struct Issued {
    std::string key;
    int seed_index;
    ServeFuture future;
  };
  std::vector<std::vector<Issued>> issued(kProducers);
  std::vector<std::thread> producers;
  Latch start(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::mt19937 rng(p);
      std::uniform_int_distribution<int> pick_class(0, 2);
      std::uniform_int_distribution<int> delay_us(0, 300);
      start.CountDown();
      start.Wait();  // all producers fire together
      for (int r = 0; r < kPerProducer; ++r) {
        const std::string& key = kClasses[pick_class(rng)];
        int seed_index = p * kPerProducer + r;
        issued[p].push_back(Issued{
            key, seed_index,
            batcher.Submit(key, requests[key][seed_index])});
        std::this_thread::sleep_for(Micros(delay_us(rng)));
      }
    });
  }
  for (std::thread& producer : producers) producer.join();

  // Every future resolves, every output is bit-identical to the unbatched
  // sequential reference.
  int resolved = 0;
  for (std::vector<Issued>& from_producer : issued) {
    for (Issued& request : from_producer) {
      ServeResponse response = request.future.get();
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      EXPECT_TRUE(BitIdentical(response.value(),
                               want[request.key][request.seed_index]));
      ++resolved;
    }
  }
  EXPECT_EQ(resolved, kProducers * kPerProducer);

  batcher.Shutdown();
  BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.submitted, kProducers * kPerProducer);
  EXPECT_EQ(stats.completed, kProducers * kPerProducer);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.expired, 0);
  EXPECT_LE(stats.max_batch_observed, options.max_batch);
  // Coalescing happened: fewer batches than requests.
  EXPECT_LT(stats.batches, stats.batched_requests);
  // Each (class, batch size) compiled at most once per schedule version.
  EXPECT_LE(stats.compiles,
            static_cast<int64_t>(kClasses.size()) * options.max_batch);
}

TEST(ServeStressTest, ShutdownWithInflightRequestsDrainsCleanly) {
  BatchOptions options;
  options.max_batch = 4;
  options.max_delay_us = 200000;  // far longer than the test: drain flushes
  options.max_inflight = 2;
  Batcher batcher(MixedFactory, MixedSchedule(), MixedMesh(), options);

  std::vector<ServeFuture> futures;
  for (int r = 0; r < 30; ++r) {
    futures.push_back(batcher.Submit("rows4", MixedRequest("rows4", 7 + r)));
  }
  // Shut down immediately: queued and pending requests must still execute
  // (drain), not hang on max_delay and not resolve as errors.
  batcher.Shutdown();
  for (ServeFuture& future : futures) {
    ServeResponse response = future.get();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
  }
  BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.completed, 30);
  EXPECT_EQ(stats.submitted, 30);
}

TEST(ServeStressTest, SubmitAfterShutdownResolvesUnavailable) {
  Batcher batcher(MixedFactory, MixedSchedule(), MixedMesh(), {});
  batcher.Shutdown();
  ServeResponse response =
      batcher.Submit("rows4", MixedRequest("rows4", 1)).get();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(batcher.stats().rejected, 1);
}

TEST(ServeStressTest, UnknownShapeClassFailsOnlyItsOwnRequests) {
  BatchOptions options;
  options.max_delay_us = 200;
  Batcher batcher(MixedFactory, MixedSchedule(), MixedMesh(), options);
  std::vector<Tensor> good_inputs = MixedRequest("rows4", 11);
  ServeFuture good = batcher.Submit("rows4", good_inputs);
  ServeFuture bad = batcher.Submit("bogus", MixedRequest("rows4", 12));
  ServeResponse bad_response = bad.get();
  ASSERT_FALSE(bad_response.ok());
  EXPECT_EQ(bad_response.status().code(), StatusCode::kNotFound);
  ServeResponse good_response = good.get();
  ASSERT_TRUE(good_response.ok()) << good_response.status().ToString();
  EXPECT_TRUE(BitIdentical(good_response.value(),
                           MixedReference("rows4", good_inputs)));
}

TEST(ServeStressTest, MalformedRequestDoesNotPoisonItsBatch) {
  BatchOptions options;
  options.max_batch = 3;
  options.max_delay_us = 20000;  // hold the batch open for all three
  Batcher batcher(MixedFactory, MixedSchedule(), MixedMesh(), options);

  std::vector<Tensor> first = MixedRequest("rows4", 21);
  std::vector<Tensor> third = MixedRequest("rows4", 23);
  std::vector<Tensor> malformed = MixedRequest("rows4", 22);
  malformed[0] = Tensor({3, 7}, 1.0f);  // wrong x shape

  ServeFuture f1 = batcher.Submit("rows4", first);
  ServeFuture f2 = batcher.Submit("rows4", malformed);
  ServeFuture f3 = batcher.Submit("rows4", third);

  ServeResponse r2 = f2.get();
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r2.status().message().find("x"), std::string::npos);

  ServeResponse r1 = f1.get();
  ServeResponse r3 = f3.get();
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r3.ok()) << r3.status().ToString();
  EXPECT_TRUE(BitIdentical(r1.value(), MixedReference("rows4", first)));
  EXPECT_TRUE(BitIdentical(r3.value(), MixedReference("rows4", third)));
  batcher.Shutdown();
  EXPECT_EQ(batcher.stats().failed, 1);
  EXPECT_EQ(batcher.stats().completed, 2);
}

TEST(ServeStressTest, RespecializeSwapsScheduleUnderLiveTraffic) {
  // BP over B and BP over M keep every row's arithmetic identical (no
  // contraction is ever split), so responses stay bit-identical to one
  // reference across the swap regardless of which schedule served them.
  std::vector<Tactic> over_b = {ManualPartition{"BP", {{"x", 0}}, "B"}};
  std::vector<Tactic> over_m = {ManualPartition{"BP", {{"x", 0}}, "M"}};
  BatchOptions options;
  options.max_batch = 4;
  options.max_delay_us = 300;
  options.max_inflight = 2;
  Batcher batcher(MixedFactory, over_b, MixedMesh(), options);

  std::vector<std::vector<Tensor>> inputs;
  std::vector<std::vector<Tensor>> want;
  for (int r = 0; r < 24; ++r) {
    inputs.push_back(MixedRequest("rows4", 400 + r));
    Program unit = MixedFactory("rows4", 1).value();
    Executable exe = unit.Partition(over_b, MixedMesh()).value();
    RunOptions sequential;
    sequential.num_threads = 1;
    want.push_back(exe.Run(inputs.back(), sequential).value());
  }

  std::vector<ServeFuture> futures;
  for (int r = 0; r < 24; ++r) {
    futures.push_back(batcher.Submit("rows4", inputs[r]));
    if (r == 8) batcher.Respecialize(over_m);
    if (r == 16) batcher.Respecialize(over_b);  // flip back: cache is warm
    std::this_thread::sleep_for(Micros(150));
  }
  for (int r = 0; r < 24; ++r) {
    ServeResponse response = futures[r].get();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(BitIdentical(response.value(), want[r]));
  }
  batcher.Shutdown();
  BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.completed, 24);
  EXPECT_EQ(stats.fallbacks, 0);
  // The flip-back respecialized through the shared partition cache.
  EXPECT_GT(stats.cache.hits, 0);
}

TEST(ServeStressTest, BackpressureUnderTinyQueueStillCompletesEverything) {
  BatchOptions options;
  options.max_batch = 4;
  options.max_delay_us = 100;
  options.queue_capacity = 2;  // Submit blocks when full
  options.max_inflight = 2;
  Batcher batcher(MixedFactory, MixedSchedule(), MixedMesh(), options);
  std::vector<std::thread> producers;
  std::vector<std::vector<ServeFuture>> per_producer(4);
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&batcher, &per_producer, p] {
      for (int r = 0; r < 8; ++r) {
        per_producer[p].push_back(
            batcher.Submit("rows4", MixedRequest("rows4", 600 + p * 8 + r)));
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  for (auto& from_producer : per_producer) {
    for (ServeFuture& future : from_producer) {
      EXPECT_TRUE(future.get().ok());
    }
  }
  batcher.Shutdown();
  EXPECT_EQ(batcher.stats().completed, 32);
}

// ---- The support primitives underneath ----

TEST(MpmcQueueTest, CloseDrainsThenStopsConsumers) {
  BoundedMpmcQueue<int> queue(4);
  int item = 1;
  EXPECT_TRUE(queue.TryPush(item));
  item = 2;
  EXPECT_TRUE(queue.Push(item));
  queue.Close();
  item = 3;
  EXPECT_FALSE(queue.Push(item));
  EXPECT_EQ(item, 3);  // refused items stay with the caller
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.PopFor(Micros(1)).value(), 2);
  EXPECT_FALSE(queue.Pop().has_value());  // closed and drained
}

TEST(MpmcQueueTest, ConcurrentProducersAndConsumersSeeEveryItem) {
  BoundedMpmcQueue<int> queue(8);
  const int kProducers = 4, kConsumers = 3, kPerProducer = 200;
  std::atomic<int64_t> sum{0};
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int item = p * kPerProducer + i;
        ASSERT_TRUE(queue.Push(item));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (std::optional<int> item = queue.Pop()) {
        sum += *item;
        ++consumed;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  queue.Close();
  for (int c = 0; c < kConsumers; ++c) threads[kProducers + c].join();
  const int total = kProducers * kPerProducer;
  EXPECT_EQ(consumed, total);
  EXPECT_EQ(sum, static_cast<int64_t>(total) * (total - 1) / 2);
}

TEST(LatchTest, ReleasesAllWaitersAtZero) {
  Latch latch(3);
  std::atomic<int> released{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&] {
      latch.Wait();
      ++released;
    });
  }
  EXPECT_FALSE(latch.Done());
  latch.CountDown();
  latch.CountDown();
  EXPECT_EQ(released, 0);
  latch.CountDown();
  for (std::thread& waiter : waiters) waiter.join();
  EXPECT_EQ(released, 4);
  EXPECT_TRUE(latch.Done());
}

}  // namespace
}  // namespace partir

// Semantics-preservation tests: for a spread of programs and tiling actions,
// the materialized PartIR:Core loop form evaluates (sequentially) to exactly
// the same result as the unpartitioned program — the executable counterpart
// of the paper's Figure 4 equivalences and Appendix C theorem.
#include <gtest/gtest.h>

#include "src/core/context.h"
#include "src/core/materialize.h"
#include "src/interp/interpreter.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/ir/verifier.h"

namespace partir {
namespace {

constexpr float kTol = 2e-4f;

// Asserts that the loop form of `ctx` is verified and equivalent to the
// original function on random inputs.
void ExpectLoopFormEquivalent(PartitionContext& ctx, uint64_t seed,
                              float index_modulus = 0.0f) {
  std::unique_ptr<Module> loop_form = MaterializeLoops(ctx);
  VerifyOrDie(*loop_form);
  std::vector<Tensor> inputs =
      MakeRandomInputs(*ctx.func(), seed, index_modulus);
  std::vector<Tensor> want = Evaluate(*ctx.func(), inputs);
  std::vector<Tensor> got = Evaluate(*loop_form->main(), inputs);
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_LT(Tensor::MaxAbsDiff(want[i], got[i]), kTol)
        << "result " << i << " diverged;\n"
        << Print(*loop_form);
  }
}

struct Chain {
  Module module;
  Func* func;
  Value* x;
  Value* w1;
  Value* w2;
};

Chain BuildChain() {
  Chain chain;
  chain.func = chain.module.AddFunc("main");
  chain.x = chain.func->body().AddArg(TensorType({16, 8}), "x");
  chain.w1 = chain.func->body().AddArg(TensorType({8, 12}), "w1");
  chain.w2 = chain.func->body().AddArg(TensorType({12, 8}), "w2");
  OpBuilder builder(&chain.func->body());
  Value* x1 = builder.MatMul(chain.x, chain.w1);
  Value* x2 = builder.MatMul(x1, chain.w2);
  builder.Return({x2});
  return chain;
}

TEST(MaterializeTest, BatchParallelChainMatchesListing7) {
  Chain chain = BuildChain();
  PartitionContext ctx(chain.func, Mesh({{"B", 4}, {"M", 2}}));
  ASSERT_TRUE(ctx.TileValue(chain.x, 0, "B"));
  ctx.Propagate();
  std::unique_ptr<Module> loop_form = MaterializeLoops(ctx);
  std::string text = Print(*loop_form);
  EXPECT_NE(text.find("loop"), std::string::npos);
  EXPECT_NE(text.find("slice"), std::string::npos);
  ExpectLoopFormEquivalent(ctx, 100);
}

TEST(MaterializeTest, MegatronChainWithSumLoop) {
  Chain chain = BuildChain();
  PartitionContext ctx(chain.func, Mesh({{"B", 4}, {"M", 2}}));
  ASSERT_TRUE(ctx.TileValue(chain.x, 0, "B"));
  ctx.Propagate();
  ASSERT_TRUE(ctx.TileValue(chain.w1, 1, "M"));
  ctx.Propagate();
  ExpectLoopFormEquivalent(ctx, 101);
}

TEST(MaterializeTest, FsdpChain) {
  Chain chain = BuildChain();
  PartitionContext ctx(chain.func, Mesh({{"B", 4}, {"M", 2}}));
  ASSERT_TRUE(ctx.TileValue(chain.x, 0, "B"));
  ctx.Propagate();
  ASSERT_TRUE(ctx.TileValue(chain.w1, 1, "M"));
  ctx.Propagate();
  ASSERT_TRUE(ctx.TileValue(chain.w1, 0, "B"));
  ASSERT_TRUE(ctx.TileValue(chain.w2, 1, "B"));
  ctx.Propagate();
  ExpectLoopFormEquivalent(ctx, 102);
}

TEST(MaterializeTest, SoftmaxMlp) {
  Module module;
  Func* func = module.AddFunc("main");
  Value* x = func->body().AddArg(TensorType({8, 16}), "x");
  Value* w = func->body().AddArg(TensorType({16, 12}), "w");
  OpBuilder builder(&func->body());
  Value* h = builder.Tanh(builder.MatMul(x, w));
  Value* p = builder.Softmax(h);
  builder.Return({p});

  PartitionContext ctx(func, Mesh({{"B", 4}}));
  ASSERT_TRUE(ctx.TileValue(x, 0, "B"));
  ctx.Propagate();
  ExpectLoopFormEquivalent(ctx, 103);
}

TEST(MaterializeTest, ReduceOverShardedDimBecomesSumLoop) {
  Module module;
  Func* func = module.AddFunc("main");
  Value* x = func->body().AddArg(TensorType({32, 6}), "x");
  OpBuilder builder(&func->body());
  Value* r = builder.Reduce(x, {0}, "sum");
  builder.Return({r});

  PartitionContext ctx(func, Mesh({{"B", 8}}));
  ASSERT_TRUE(ctx.TileValue(x, 0, "B"));
  ctx.Propagate();
  ASSERT_EQ(ctx.nest(r->def()).size(), 1u);
  EXPECT_TRUE(ctx.nest(r->def())[0].contracting);
  ExpectLoopFormEquivalent(ctx, 104);
}

TEST(MaterializeTest, MaxReduceOverShardedDim) {
  Module module;
  Func* func = module.AddFunc("main");
  Value* x = func->body().AddArg(TensorType({32, 6}), "x");
  OpBuilder builder(&func->body());
  Value* r = builder.Reduce(x, {0}, "max");
  builder.Return({r});

  PartitionContext ctx(func, Mesh({{"B", 8}}));
  ASSERT_TRUE(ctx.TileValue(x, 0, "B"));
  ctx.Propagate();
  ExpectLoopFormEquivalent(ctx, 105);
}

TEST(MaterializeTest, ScatterGatherGraphBlock) {
  // A GNS-style block: gather node features at edge endpoints, transform,
  // scatter-add messages back to nodes.
  Module module;
  Func* func = module.AddFunc("main");
  Value* nodes = func->body().AddArg(TensorType({10, 6}), "nodes");
  Value* senders =
      func->body().AddArg(TensorType({24}, DType::kS32), "senders");
  Value* w = func->body().AddArg(TensorType({6, 6}), "w");
  OpBuilder builder(&func->body());
  Value* edge_feats = builder.Gather(nodes, senders);
  Value* messages = builder.Tanh(builder.MatMul(edge_feats, w));
  Value* aggregated = builder.ScatterAdd(senders, messages, 10);
  Value* updated = builder.Add(nodes, aggregated);
  builder.Return({updated});

  PartitionContext ctx(func, Mesh({{"batch", 4}}));
  ASSERT_TRUE(ctx.TileValue(senders, 0, "batch"));
  ctx.Propagate();
  ExpectLoopFormEquivalent(ctx, 106, /*index_modulus=*/10.0f);
}

TEST(MaterializeTest, ConvolutionBatchAndChannels) {
  Module module;
  Func* func = module.AddFunc("main");
  Value* img = func->body().AddArg(TensorType({8, 6, 6, 4}), "img");
  Value* f1 = func->body().AddArg(TensorType({3, 3, 4, 8}), "f1");
  OpBuilder builder(&func->body());
  Value* h = builder.Convolution(img, f1);
  builder.Return({h});

  PartitionContext ctx(func, Mesh({{"B", 4}, {"M", 2}}));
  ASSERT_TRUE(ctx.TileValue(img, 0, "B"));
  ASSERT_TRUE(ctx.TileValue(f1, 3, "M"));
  ctx.Propagate();
  EXPECT_EQ(ctx.nest(h->def()).size(), 2u);
  ExpectLoopFormEquivalent(ctx, 107);
}

TEST(MaterializeTest, DeepTilingSameDimTwoAxes) {
  Module module;
  Func* func = module.AddFunc("main");
  Value* x = func->body().AddArg(TensorType({16, 4}), "x");
  OpBuilder builder(&func->body());
  Value* y = builder.Exp(x);
  builder.Return({y});

  PartitionContext ctx(func, Mesh({{"a", 4}, {"b", 2}}));
  ASSERT_TRUE(ctx.TileValue(x, 0, "a"));
  ctx.Propagate();
  ASSERT_TRUE(ctx.TileValue(x, 0, "b"));
  ctx.Propagate();
  ExpectLoopFormEquivalent(ctx, 108);
}

TEST(MaterializeTest, DataConstantIsSlicedNotShrunk) {
  Module module;
  Func* func = module.AddFunc("main");
  Value* x = func->body().AddArg(TensorType({8, 4}), "x");
  OpBuilder builder(&func->body());
  std::vector<float> data(32);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<float>(i);
  Value* c = builder.ConstantData(data, {8, 4});
  Value* y = builder.Add(x, c);
  builder.Return({y});

  PartitionContext ctx(func, Mesh({{"B", 4}}));
  ASSERT_TRUE(ctx.TileValue(x, 0, "B"));
  ctx.Propagate();
  ExpectLoopFormEquivalent(ctx, 109);
}

TEST(MaterializeTest, SplatConstantShrinks) {
  Module module;
  Func* func = module.AddFunc("main");
  Value* x = func->body().AddArg(TensorType({8, 4}), "x");
  OpBuilder builder(&func->body());
  Value* y = builder.AddScalar(x, 3.5);
  builder.Return({y});

  PartitionContext ctx(func, Mesh({{"B", 4}}));
  ASSERT_TRUE(ctx.TileValue(x, 0, "B"));
  ctx.Propagate();
  ExpectLoopFormEquivalent(ctx, 110);
}

TEST(MaterializeTest, BroadcastNewDimTiled) {
  Module module;
  Func* func = module.AddFunc("main");
  Value* x = func->body().AddArg(TensorType({6}), "x");
  Value* y = func->body().AddArg(TensorType({8, 6}), "y");
  OpBuilder builder(&func->body());
  Value* b = builder.BroadcastInDim(x, {8, 6}, {1});
  Value* z = builder.Mul(b, y);
  builder.Return({z});

  PartitionContext ctx(func, Mesh({{"B", 4}}));
  ASSERT_TRUE(ctx.TileValue(y, 0, "B"));
  ctx.Propagate();
  // The broadcast adopts the tiling on its result-only dim 0.
  EXPECT_EQ(ctx.nest(b->def()).size(), 1u);
  ExpectLoopFormEquivalent(ctx, 111);
}

TEST(MaterializeTest, UnpartitionedProgramRoundTrips) {
  Chain chain = BuildChain();
  PartitionContext ctx(chain.func, Mesh({{"B", 4}}));
  ExpectLoopFormEquivalent(ctx, 112);
}

// Property sweep: a grid of (axis sizes, seed dims) on a two-layer MLP with
// bias and nonlinearity; every action that applies cleanly must preserve
// semantics in loop form.
struct SweepParam {
  int64_t batch_axis;
  int64_t model_axis;
  int seed_dim;  // which value to tile: 0=x@0, 1=w1@1, 2=w2@1
};

class MaterializeSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(MaterializeSweepTest, LoopFormPreservesSemantics) {
  SweepParam param = GetParam();
  Module module;
  Func* func = module.AddFunc("main");
  Value* x = func->body().AddArg(TensorType({16, 8}), "x");
  Value* w1 = func->body().AddArg(TensorType({8, 16}), "w1");
  Value* b1 = func->body().AddArg(TensorType({16}), "b1");
  Value* w2 = func->body().AddArg(TensorType({16, 4}), "w2");
  OpBuilder builder(&func->body());
  Value* h = builder.MatMul(x, w1);
  Value* hb = builder.Add(h, builder.BroadcastInDim(b1, {16, 16}, {1}));
  Value* a = builder.Tanh(hb);
  Value* out = builder.MatMul(a, w2);
  builder.Return({out});

  PartitionContext ctx(
      func, Mesh({{"B", param.batch_axis}, {"M", param.model_axis}}));
  bool applied = false;
  switch (param.seed_dim) {
    case 0: applied = ctx.TileValue(x, 0, "B"); break;
    case 1: applied = ctx.TileValue(w1, 1, "M"); break;
    case 2: applied = ctx.TileValue(w2, 1, "M"); break;
  }
  ASSERT_TRUE(applied);
  ctx.Propagate();
  ExpectLoopFormEquivalent(ctx, 500 + param.seed_dim);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MaterializeSweepTest,
    ::testing::Values(SweepParam{2, 2, 0}, SweepParam{4, 2, 0},
                      SweepParam{8, 2, 0}, SweepParam{16, 2, 0},
                      SweepParam{2, 2, 1}, SweepParam{2, 4, 1},
                      SweepParam{2, 8, 1}, SweepParam{2, 16, 1},
                      SweepParam{2, 2, 2}, SweepParam{2, 4, 2},
                      SweepParam{4, 4, 1}, SweepParam{4, 4, 2}));

TEST(MaterializeTest, SelfMatmulSlicesEachOperandSlotIndependently) {
  // matmul(x, x): the same value feeds both operand slots, and a #sum loop
  // over the contraction slices slot 0 on dim 1 but slot 1 on dim 0.
  // Regression test for the materializer unifying duplicate operands
  // through its value map (both slots got the last slot's slice).
  Module module;
  Func* func = module.AddFunc("main");
  Value* x = func->body().AddArg(TensorType({32, 32}), "x");
  OpBuilder builder(&func->body());
  builder.Return({builder.MatMul(x, x)});
  PartitionContext ctx(func, Mesh({{"B", 4}}));

  // Seeding x on either dim is ambiguous for a self-matmul (two TMR
  // entries match), so force the contraction factor directly.
  Operation* dot = func->body().ops()[0].get();
  OpShardingSpec spec = GetShardingSpec(*dot);
  int contraction = -1;
  for (int i = 0; i < static_cast<int>(spec.factors.size()); ++i) {
    if (spec.factors[i].contracting) contraction = i;
  }
  ASSERT_GE(contraction, 0);
  ASSERT_TRUE(ctx.ForceOpAxis(dot, "B", contraction));

  ExpectLoopFormEquivalent(ctx, /*seed=*/21);
}

}  // namespace
}  // namespace partir

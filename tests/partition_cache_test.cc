// Tests for the Program partition cache: trace fingerprinting, hit/miss
// keying on (trace, schedule, mesh, options), Respecialize sharing the
// cache, isolation of the cloned executables a hit hands out, and
// single-flight coalescing of concurrent misses on one key.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/api/partir.h"
#include "src/api/partition_cache.h"
#include "src/exec/device_program.h"
#include "src/ir/fingerprint.h"
#include "src/support/mpmc_queue.h"

namespace partir {
namespace {

Program MakeChain(const std::string& x_name = "x") {
  Program program("main");
  Value* x = program.AddInput(TensorType({16, 8}), x_name);
  Value* w1 = program.AddInput(TensorType({8, 12}), "w1");
  Value* w2 = program.AddInput(TensorType({12, 8}), "w2");
  OpBuilder& builder = program.builder();
  program.Return({builder.MatMul(builder.MatMul(x, w1), w2)});
  return program;
}

std::vector<Tactic> BpSchedule(const std::string& key = "x") {
  return {ManualPartition{"BP", {{key, 0}}, "B"}};
}

TEST(TraceFingerprintTest, IdenticalTracesAgree) {
  Program a = MakeChain();
  Program b = MakeChain();
  EXPECT_EQ(a.TraceFingerprint(), b.TraceFingerprint());
}

TEST(TraceFingerprintTest, ArgumentNamesAndShapesMatter) {
  // Argument names are schedule keys, so renaming must change the key.
  Program renamed = MakeChain("queries");
  EXPECT_NE(MakeChain().TraceFingerprint(), renamed.TraceFingerprint());

  Program reshaped("main");
  Value* x = reshaped.AddInput(TensorType({32, 8}), "x");
  Value* w1 = reshaped.AddInput(TensorType({8, 12}), "w1");
  Value* w2 = reshaped.AddInput(TensorType({12, 8}), "w2");
  OpBuilder& builder = reshaped.builder();
  reshaped.Return({builder.MatMul(builder.MatMul(x, w1), w2)});
  EXPECT_NE(MakeChain().TraceFingerprint(), reshaped.TraceFingerprint());
}

TEST(PartitionCacheTest, RepeatedPartitionIsAHit) {
  Program program = MakeChain();
  Mesh mesh({{"B", 4}, {"M", 2}});
  PartitionCacheStats stats = program.cache_stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 0);
  EXPECT_EQ(stats.entries, 0);

  Executable first = program.Partition(BpSchedule(), mesh).value();
  stats = program.cache_stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1);

  // A hit performs zero device-program compilations: the clone shares the
  // cached entry's immutable compiled program.
  int64_t compiles_before = exec::CompiledProgramCount();
  Executable second = program.Partition(BpSchedule(), mesh).value();
  EXPECT_EQ(exec::CompiledProgramCount(), compiles_before);
  stats = program.cache_stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1);

  // The hit serves a clone: independent module, identical behavior.
  EXPECT_NE(first.spmd().module.get(), second.spmd().module.get());
  std::vector<Tensor> inputs = program.RandomInputs(3);
  std::vector<Tensor> want = first.Run(inputs).value();
  std::vector<Tensor> got = second.Run(inputs).value();
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].data(), got[i].data());
  }
  // Metadata survives the round trip.
  EXPECT_EQ(first.Collectives().all_reduce, second.Collectives().all_reduce);
  ASSERT_EQ(first.tactics().size(), second.tactics().size());
  EXPECT_EQ(first.tactics()[0].name, second.tactics()[0].name);
}

TEST(PartitionCacheTest, DifferentRequestsMiss) {
  Program program = MakeChain();
  Mesh mesh({{"B", 4}, {"M", 2}});
  (void)program.Partition(BpSchedule(), mesh).value();

  // Different schedule.
  (void)program
      .Partition({ManualPartition{"MP", {{"w1", 1}}, "M"}}, mesh)
      .value();
  // Different mesh.
  (void)program.Partition(BpSchedule(), Mesh({{"B", 2}, {"M", 2}})).value();
  // Different options (the PartIR-st ablation propagates differently).
  PartitionOptions st;
  st.incremental = false;
  (void)program.Partition(BpSchedule(), mesh, st).value();

  PartitionCacheStats stats = program.cache_stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 4);
  EXPECT_EQ(stats.entries, 4);
}

TEST(PartitionCacheTest, RespecializeSharesTheCache) {
  Program program = MakeChain();
  Mesh mesh({{"B", 4}, {"M", 2}});
  Executable exe = program.Partition(BpSchedule(), mesh).value();

  // Same schedule through Respecialize: a hit.
  (void)exe.Respecialize(BpSchedule()).value();
  PartitionCacheStats stats = program.cache_stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);

  // A new schedule misses, then the same request through the Program hits.
  std::vector<Tactic> mp = {ManualPartition{"MP", {{"w1", 1}}, "M"}};
  (void)exe.Respecialize(mp).value();
  (void)program.Partition(mp, mesh).value();
  stats = program.cache_stats();
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.entries, 2);
}

TEST(PartitionCacheTest, CapturedStagesSurviveTheCache) {
  Program program = MakeChain();
  Mesh mesh({{"B", 4}, {"M", 2}});
  PartitionOptions options;
  options.capture_stages = true;
  (void)program.Partition(BpSchedule(), mesh, options).value();
  Executable hit = program.Partition(BpSchedule(), mesh, options).value();
  EXPECT_EQ(program.cache_stats().hits, 1);
  EXPECT_TRUE(hit.Print(Stage::Loops()).ok());
  EXPECT_TRUE(hit.Print(Stage::AfterTactic(0)).ok());
}

TEST(PartitionCacheTest, MutatingOneExecutableDoesNotPoisonTheCache) {
  Program program = MakeChain();
  Mesh mesh({{"B", 4}});
  Executable first = program.Partition(BpSchedule(), mesh).value();
  std::vector<Tensor> inputs = program.RandomInputs(9);
  std::vector<Tensor> want = first.Run(inputs).value();

  // Deface the first executable's module through the mutable accessor.
  first.mutable_spmd().module->main()->body().EraseIf(
      [](const Operation& op) { return op.kind() == OpKind::kReturn; });

  // A hit still serves the pristine cached copy.
  Executable second = program.Partition(BpSchedule(), mesh).value();
  EXPECT_EQ(program.cache_stats().hits, 1);
  std::vector<Tensor> got = second.Run(inputs).value();
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].data(), got[i].data());
  }
}

TEST(PartitionCacheTest, LruEvictionBoundsEntries) {
  PartitionCache cache(/*capacity=*/2);
  auto entry = [] { return std::make_shared<const PartitionResult>(); };
  cache.Insert("a", entry());
  cache.Insert("b", entry());
  EXPECT_NE(cache.Lookup("a"), nullptr);  // refreshes "a"
  cache.Insert("c", entry());             // evicts "b", the LRU entry
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  PartitionCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2);
  EXPECT_EQ(stats.capacity, 2);
}

TEST(PartitionCacheTest, TraceMutationAfterPartitionChangesTheKey) {
  // The fingerprint is recomputed per Partition call, so growing the trace
  // through the builder (even though sealed programs normally never
  // change) can never serve the old trace's cached module.
  Program program("main");
  Value* x = program.AddInput(TensorType({16, 8}), "x");
  Value* w = program.AddInput(TensorType({8, 8}), "w");
  Value* h = program.builder().MatMul(x, w);
  program.Return({h});
  Mesh mesh({{"B", 4}});
  uint64_t before = program.TraceFingerprint();
  (void)program.Partition(BpSchedule(), mesh).value();

  // Pathological but possible: the builder is still exposed.
  program.builder().Tanh(h);
  EXPECT_NE(program.TraceFingerprint(), before);
}

TEST(PartitionCacheTest, DelimitersInNamesCannotForgeKeys) {
  // User strings are length-prefixed: moving a '|' between the tactic
  // name and the axis must not produce the same canonical key.
  Mesh mesh({{"B", 4}});
  std::vector<Tactic> a = {ManualPartition{"t|x", {{"k", 0}}, "y"}};
  std::vector<Tactic> b = {ManualPartition{"t", {{"k", 0}}, "x|y"}};
  EXPECT_NE(PartitionCacheKey(1, a, mesh, {}),
            PartitionCacheKey(1, b, mesh, {}));
}

TEST(PartitionCacheTest, RespecializeAfterTraceMutationMisses) {
  Program program("main");
  Value* x = program.AddInput(TensorType({16, 8}), "x");
  Value* w = program.AddInput(TensorType({8, 8}), "w");
  Value* h = program.builder().MatMul(x, w);
  program.Return({h});
  Mesh mesh({{"B", 4}});
  Executable exe = program.Partition(BpSchedule(), mesh).value();

  // Pathological: grow the (normally immutable) trace behind the facade.
  // Respecialize fingerprints the live trace, so the same schedule must
  // miss — and then fail on the now-invalid function — rather than hit
  // the cache and silently serve the pre-mutation module.
  program.builder().Tanh(h);
  StatusOr<Executable> stale = exe.Respecialize(BpSchedule());
  EXPECT_FALSE(stale.ok());
  PartitionCacheStats stats = program.cache_stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 2);
}

TEST(PartitionCacheTest, UseCacheOffBypassesTheCache) {
  Program program = MakeChain();
  Mesh mesh({{"B", 4}});
  PartitionOptions options;
  options.use_cache = false;
  Executable first = program.Partition(BpSchedule(), mesh, options).value();
  Executable second = program.Partition(BpSchedule(), mesh, options).value();
  PartitionCacheStats stats = program.cache_stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 0);
  EXPECT_EQ(stats.entries, 0);
  std::vector<Tensor> inputs = program.RandomInputs(4);
  std::vector<Tensor> want = first.Run(inputs).value();
  std::vector<Tensor> got = second.Run(inputs).value();
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].data(), got[i].data());
  }
}

TEST(PartitionCacheTest, ConcurrentMissStormRunsThePipelineOnce) {
  // Two threads racing to compile the same key: the first becomes the
  // leader and runs `compute`; the second joins the in-flight computation
  // and waits instead of computing again — one run, one entry.
  PartitionCache cache;
  std::atomic<int> compute_runs{0};
  Latch leader_entered(1);
  Latch release_leader(1);
  auto compute = [&]() -> StatusOr<PartitionResult> {
    ++compute_runs;
    leader_entered.CountDown();
    release_leader.Wait();
    return PartitionResult();
  };

  std::shared_ptr<const PartitionResult> leader_result;
  std::thread leader([&] {
    leader_result = cache.GetOrCompute("key", compute).value();
  });
  leader_entered.Wait();  // the leader is inside compute
  std::shared_ptr<const PartitionResult> follower_result;
  std::thread follower([&] {
    follower_result = cache.GetOrCompute("key", compute).value();
  });
  // Give the follower time to reach the join path, then let the leader
  // finish (a late follower would just hit the completed entry — still one
  // pipeline run either way).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  release_leader.CountDown();
  leader.join();
  follower.join();

  EXPECT_EQ(compute_runs, 1);
  EXPECT_EQ(leader_result.get(), follower_result.get());
  PartitionCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.entries, 1);
}

TEST(PartitionCacheTest, FollowersOfAFailedLeaderGetItsErrorUncached) {
  PartitionCache cache;
  std::atomic<int> compute_runs{0};
  Latch leader_entered(1);
  Latch release_leader(1);
  std::atomic<bool> first_run{true};
  auto failing = [&]() -> StatusOr<PartitionResult> {
    ++compute_runs;
    // Only the first run drives the latches: a follower that arrives after
    // the (uncached) failure legitimately becomes a second leader.
    if (first_run.exchange(false)) {
      leader_entered.CountDown();
      release_leader.Wait();
    }
    return InternalError("pipeline exploded");
  };
  Status leader_status = Status::Ok();
  Status follower_status = Status::Ok();
  std::thread leader([&] {
    leader_status = cache.GetOrCompute("key", failing).status();
  });
  leader_entered.Wait();
  std::thread follower([&] {
    follower_status = cache.GetOrCompute("key", failing).status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  release_leader.CountDown();
  leader.join();
  follower.join();

  EXPECT_EQ(leader_status.code(), StatusCode::kInternal);
  EXPECT_EQ(follower_status.code(), StatusCode::kInternal);
  EXPECT_LE(compute_runs, 2);  // never more than one run per caller
  EXPECT_EQ(cache.stats().entries, 0);  // errors are not cached

  // The storm is over; the next call retries fresh and can succeed.
  auto recovered = [&]() -> StatusOr<PartitionResult> {
    return PartitionResult();
  };
  EXPECT_TRUE(cache.GetOrCompute("key", recovered).ok());
  EXPECT_EQ(cache.stats().entries, 1);
}

TEST(PartitionCacheTest, FacadeMissStormYieldsOnePipelineRunAndOneEntry) {
  // The serving regime: many workers racing Program::Partition with the
  // identical request. Exactly one pipeline run (one miss); everyone else
  // hits — either by joining the in-flight run or by arriving after it.
  Program program = MakeChain();
  Mesh mesh({{"B", 4}, {"M", 2}});
  const int kThreads = 6;
  std::vector<std::thread> threads;
  std::vector<StatusOr<Executable>> results;
  results.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    results.emplace_back(InternalError("not run"));
  }
  Latch start(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.CountDown();
      start.Wait();
      results[t] = program.Partition(BpSchedule(), mesh);
    });
  }
  for (std::thread& thread : threads) thread.join();

  PartitionCacheStats stats = program.cache_stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, kThreads - 1);
  EXPECT_EQ(stats.entries, 1);

  std::vector<Tensor> inputs = program.RandomInputs(5);
  std::vector<Tensor> want = program.Evaluate(inputs).value();
  for (StatusOr<Executable>& result : results) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::vector<Tensor> got = result->Run(inputs).value();
    EXPECT_LT(Tensor::MaxAbsDiff(want[0], got[0]), 1e-3f);
  }
}

TEST(PartitionCacheTest, PipelineErrorsAreNotCached) {
  Program program = MakeChain();
  Mesh mesh({{"B", 4}});
  StatusOr<Executable> bad =
      program.Partition(BpSchedule("no_such_input"), mesh);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  PartitionCacheStats stats = program.cache_stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 0);
}

}  // namespace
}  // namespace partir

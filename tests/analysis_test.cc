// Tests for the static analysis suite (src/analysis/): every example and
// serving workload must analyze clean, and every injected fault — skewed
// collective sequence, mismatched signature, rendezvous cycle, forged
// overlapping-slot plan, illegal in-place adoption, shape skew, structural
// lint breakage — must come back as a typed diagnostic, never a crash.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/analysis/analyze.h"
#include "src/analysis/collective_checker.h"
#include "src/analysis/memory_checker.h"
#include "src/analysis/shape_checker.h"
#include "src/api/partir.h"
#include "src/exec/device_program.h"
#include "src/exec/memory_planner.h"
#include "src/ir/builder.h"
#include "src/models/gns.h"
#include "src/models/schedules.h"
#include "src/models/serving.h"
#include "src/models/transformer.h"
#include "src/persist/serializer.h"
#include "src/persist/store.h"

namespace partir {
namespace {

using analysis::AnalysisReport;
using analysis::CollectiveEvent;
using analysis::DeviceTrace;
using analysis::Severity;
using serving::AllServeWorkloads;
using serving::ServeWorkload;

// ---- Trace-level fault injection (the detector takes explicit traces
// ---- precisely so tests can skew them) ----

CollectiveEvent Event(int index, int64_t site, int64_t group_size,
                      const std::string& signature) {
  CollectiveEvent event;
  event.index = index;
  event.site = site;
  event.group_size = group_size;
  event.signature = signature;
  event.location = "site " + std::to_string(site);
  return event;
}

TEST(CollectiveCheckerTest, IdenticalTracesAreClean) {
  std::vector<DeviceTrace> traces(2);
  for (int64_t d = 0; d < 2; ++d) {
    traces[d].device = d;
    traces[d].events = {Event(0, 0, 2, "all_reduce[B] sum numel=8"),
                        Event(1, 1, 2, "all_gather[B] numel=8")};
  }
  AnalysisReport report;
  CheckCollectiveTraces(traces, report);
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST(CollectiveCheckerTest, SignatureMismatchIsDetected) {
  std::vector<DeviceTrace> traces(2);
  traces[0].device = 0;
  traces[0].events = {Event(0, 0, 2, "all_reduce[B] sum numel=8")};
  traces[1].device = 1;
  traces[1].events = {Event(0, 0, 2, "all_reduce[B] max numel=8")};
  AnalysisReport report;
  CheckCollectiveTraces(traces, report);
  EXPECT_GT(report.errors(), 0);
  EXPECT_TRUE(report.HasChecker("collective-mismatch")) << report.ToString();
}

TEST(CollectiveCheckerTest, SkewedSequenceMissingArrivalIsDeadlock) {
  // Device 1's trace lost its second collective: site 1 waits forever.
  std::vector<DeviceTrace> traces(2);
  traces[0].device = 0;
  traces[0].events = {Event(0, 0, 2, "all_reduce[B] sum numel=8"),
                      Event(1, 1, 2, "all_gather[B] numel=8")};
  traces[1].device = 1;
  traces[1].events = {Event(0, 0, 2, "all_reduce[B] sum numel=8")};
  AnalysisReport report;
  CheckCollectiveTraces(traces, report);
  EXPECT_GT(report.errors(), 0);
  EXPECT_TRUE(report.HasChecker("collective-deadlock")) << report.ToString();
}

TEST(CollectiveCheckerTest, DuplicateArrivalIsDeadlock) {
  std::vector<DeviceTrace> traces(2);
  traces[0].device = 0;
  traces[0].events = {Event(0, 0, 2, "all_reduce[B] sum numel=8"),
                      Event(1, 0, 2, "all_reduce[B] sum numel=8")};
  traces[1].device = 1;
  traces[1].events = {Event(0, 0, 2, "all_reduce[B] sum numel=8")};
  AnalysisReport report;
  CheckCollectiveTraces(traces, report);
  EXPECT_GT(report.errors(), 0);
  EXPECT_TRUE(report.HasChecker("collective-deadlock")) << report.ToString();
}

TEST(CollectiveCheckerTest, RendezvousCycleIsDeadlock) {
  // Every site sees the right devices the right number of times, but the
  // devices visit the two sites in opposite orders: a circular wait.
  std::vector<DeviceTrace> traces(2);
  traces[0].device = 0;
  traces[0].events = {Event(0, 0, 2, "all_reduce[B] sum numel=8"),
                      Event(1, 1, 2, "all_reduce[B] sum numel=8")};
  traces[1].device = 1;
  traces[1].events = {Event(0, 1, 2, "all_reduce[B] sum numel=8"),
                      Event(1, 0, 2, "all_reduce[B] sum numel=8")};
  AnalysisReport report;
  CheckCollectiveTraces(traces, report);
  EXPECT_GT(report.errors(), 0);
  EXPECT_TRUE(report.HasChecker("collective-deadlock")) << report.ToString();
  // The cycle diagnostic names a witness path through the sites.
  bool has_cycle_note = false;
  for (const analysis::Diagnostic& diag : report.diagnostics) {
    has_cycle_note |= !diag.notes.empty();
  }
  EXPECT_TRUE(has_cycle_note) << report.ToString();
}

// ---- Memory-plan fault injection ----

Executable PartitionedChain() {
  Program program("chain");
  Value* x = program.AddInput(TensorType({16, 8}), "x");
  Value* w1 = program.AddInput(TensorType({8, 8}), "w1");
  Value* w2 = program.AddInput(TensorType({8, 8}), "w2");
  OpBuilder& builder = program.builder();
  program.Return({builder.MatMul(builder.MatMul(x, w1), w2)});
  (void)x;
  return program
      .Partition({ManualPartition{"BP", {{"x", 0}}, "B"}}, Mesh({{"B", 4}}))
      .value();
}

// The executable's cached exec_program may key another clone's module, so
// pair the checker with a program compiled from this very module instance.
std::shared_ptr<const exec::DeviceProgram> CompiledProgram(
    const Executable& exe) {
  return exec::CompileDeviceProgram(exe.spmd()).value();
}

TEST(MemoryCheckerTest, RealPlanVerifiesClean) {
  Executable exe = PartitionedChain();
  std::shared_ptr<const exec::DeviceProgram> program = CompiledProgram(exe);
  const Func& main = *exe.spmd().module->funcs().front();
  AnalysisReport report;
  CheckMemoryPlan(main, program->plan, report);
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST(MemoryCheckerTest, ForgedOverlappingSlotsAreFlagged) {
  Executable exe = PartitionedChain();
  std::shared_ptr<const exec::DeviceProgram> program = CompiledProgram(exe);
  const Func& main = *exe.spmd().module->funcs().front();
  exec::MemoryPlan forged = program->plan;

  // Two same-size function arguments are live over the whole program; force
  // them into one slot and the plan is unsound.
  int first = -1, second = -1;
  for (int i = 0; second == -1 && i < static_cast<int>(forged.values.size());
       ++i) {
    const exec::ValuePlan& a = forged.values[i];
    if (a.def != -1 || a.region_local) continue;
    for (int j = i + 1; j < static_cast<int>(forged.values.size()); ++j) {
      const exec::ValuePlan& b = forged.values[j];
      if (b.def != -1 || b.region_local) continue;
      if (a.numel == b.numel && a.slot != b.slot) {
        first = i;
        second = j;
        break;
      }
    }
  }
  ASSERT_NE(second, -1) << "chain program lost its twin replicated weights";
  forged.values[second].slot = forged.values[first].slot;

  AnalysisReport report;
  CheckMemoryPlan(main, forged, report);
  EXPECT_GT(report.errors(), 0);
  EXPECT_TRUE(report.HasChecker("memory-plan")) << report.ToString();
}

TEST(MemoryCheckerTest, IllegalInPlaceIsFlagged) {
  Executable exe = PartitionedChain();
  std::shared_ptr<const exec::DeviceProgram> program = CompiledProgram(exe);
  const Func& main = *exe.spmd().module->funcs().front();
  exec::MemoryPlan forged = program->plan;
  // An argument has no defining instruction; claiming it adopted an operand
  // buffer in place is nonsense the checker must reject.
  ASSERT_FALSE(forged.values.empty());
  ASSERT_EQ(forged.values[0].def, -1);
  forged.values[0].in_place = true;
  AnalysisReport report;
  CheckMemoryPlan(main, forged, report);
  EXPECT_GT(report.errors(), 0);
  EXPECT_TRUE(report.HasChecker("memory-plan")) << report.ToString();
}

// ---- Shape skew ----

TEST(ShapeCheckerTest, ForgedCollectiveShapeSkewIsDetected) {
  // A hand-forged all_gather whose declared result kept the *local* shape
  // (it must grow by the gathered axis), and an all_slice whose dim is not
  // divisible by the slicing axis.
  SpmdModule spmd;
  spmd.module = std::make_unique<Module>();
  spmd.mesh = Mesh({{"B", 2}});
  Func* func = spmd.module->AddFunc("main");
  Value* x = func->body().AddArg(TensorType({8, 4}), "x");
  Value* y = func->body().AddArg(TensorType({7, 4}), "y");

  auto gather = std::make_unique<Operation>(
      OpKind::kAllGather, std::vector<Value*>{x},
      std::vector<Type>{Type(TensorType({8, 4}))});  // should be {16, 4}
  gather->attrs().Set("axes_per_dim",
                      Attr(AxesPerDim{{"B"}, {}}));
  Operation* gather_op = func->body().Append(std::move(gather));

  auto slice = std::make_unique<Operation>(
      OpKind::kAllSlice, std::vector<Value*>{y},
      std::vector<Type>{Type(TensorType({3, 4}))});  // 7 is not divisible
  slice->attrs().Set("axes_per_dim", Attr(AxesPerDim{{"B"}, {}}));
  Operation* slice_op = func->body().Append(std::move(slice));

  OpBuilder builder(&func->body());
  builder.Return({gather_op->result(), slice_op->result()});
  ValueSharding replicated{AxesPerDim{{}, {}}};
  spmd.input_shardings = {replicated, replicated};
  spmd.output_shardings = {replicated, replicated};

  AnalysisReport report;
  CheckShapes(spmd, report);
  EXPECT_GE(report.errors(), 2) << report.ToString();
  EXPECT_TRUE(report.HasChecker("shape-check")) << report.ToString();

  // The full suite over the same skewed module: typed diagnostics, no crash.
  AnalysisReport full = analysis::AnalyzeSpmd(spmd);
  EXPECT_GT(full.errors(), 0);
  EXPECT_TRUE(full.HasChecker("shape-check")) << full.ToString();
}

// ---- Structural lint ----

TEST(LintTest, MissingCollectiveAttributesAreErrors) {
  Module module;
  Func* func = module.AddFunc("main");
  Value* x = func->body().AddArg(TensorType({4, 4}), "x");
  auto reduce = std::make_unique<Operation>(
      OpKind::kAllReduce, std::vector<Value*>{x},
      std::vector<Type>{Type(TensorType({4, 4}))});
  Operation* reduce_op = func->body().Append(std::move(reduce));
  OpBuilder builder(&func->body());
  builder.Return({reduce_op->result()});

  AnalysisReport report = analysis::AnalyzeModule(module);
  EXPECT_GT(report.errors(), 0);
  EXPECT_TRUE(report.HasChecker("ir-lint")) << report.ToString();
}

TEST(LintTest, LintErrorsSkipTheSemanticCheckers) {
  SpmdModule spmd;
  spmd.module = std::make_unique<Module>();
  spmd.mesh = Mesh({{"B", 2}});
  Func* func = spmd.module->AddFunc("main");
  func->body().AddArg(TensorType({4, 4}), "x");
  OpBuilder builder(&func->body());
  // A loop whose body was never populated: no yield, no values.
  Operation* loop = builder.Loop("B", 2, "tile", 0, TensorType({4, 4}));
  builder.Return({loop->result()});

  AnalysisReport report = analysis::AnalyzeSpmd(spmd);
  EXPECT_GT(report.errors(), 0);
  EXPECT_TRUE(report.HasChecker("ir-lint")) << report.ToString();
  // Only the lint ran; the shape/collective/memory checkers were skipped
  // (their conclusions would be meaningless over broken structure).
  ASSERT_EQ(report.checkers_run.size(), 1u) << report.ToString();
  EXPECT_EQ(report.checkers_run[0], "lint");
}

// ---- Redundant-collective lint over boundary-realization sequences ----

/** Appends a collective op with an axes_per_dim attribute. */
Operation* AppendAxesPerDimCollective(Func* func, OpKind kind, Value* operand,
                                      std::vector<int64_t> result_dims,
                                      AxesPerDim axes_per_dim) {
  auto op = std::make_unique<Operation>(
      kind, std::vector<Value*>{operand},
      std::vector<Type>{Type(TensorType(std::move(result_dims)))});
  op->attrs().Set("axes_per_dim", Attr(std::move(axes_per_dim)));
  if (kind == OpKind::kReduceScatter) {
    op->attrs().Set("reduction", Attr(std::string("sum")));
  }
  return func->body().Append(std::move(op));
}

TEST(LintTest, GatherSliceRoundTripIsFlagged) {
  // all_slice(all_gather(x)) with the same axes_per_dim: the redundant
  // data motion fuse-gather-slice exists to remove. A survivor must come
  // back as a redundant-collective warning, not silence.
  SpmdModule spmd;
  spmd.module = std::make_unique<Module>();
  spmd.mesh = Mesh({{"B", 2}});
  Func* func = spmd.module->AddFunc("main");
  Value* x = func->body().AddArg(TensorType({4, 4}), "x");
  Operation* gather = AppendAxesPerDimCollective(
      func, OpKind::kAllGather, x, {8, 4}, AxesPerDim{{"B"}, {}});
  Operation* slice = AppendAxesPerDimCollective(
      func, OpKind::kAllSlice, gather->result(), {4, 4},
      AxesPerDim{{"B"}, {}});
  OpBuilder builder(&func->body());
  builder.Return({slice->result()});

  AnalysisReport report = analysis::AnalyzeSpmd(spmd);
  EXPECT_EQ(report.errors(), 0) << report.ToString();
  bool flagged = false;
  for (const analysis::Diagnostic& diag : report.diagnostics) {
    if (diag.checker_id == "redundant-collective" &&
        diag.message.find("round-trip") != std::string::npos) {
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged) << report.ToString();
}

TEST(LintTest, ReduceScatterOfReplicatedIsFlagged) {
  // reduce_scatter of an already all_reduced value: every device holds the
  // full sum, so the reduce_scatter re-reduces identical copies (a scaling
  // bug, the double-reduction hazard of the boundary-scatter path).
  SpmdModule spmd;
  spmd.module = std::make_unique<Module>();
  spmd.mesh = Mesh({{"B", 2}});
  Func* func = spmd.module->AddFunc("main");
  Value* x = func->body().AddArg(TensorType({4, 4}), "x");
  auto reduce = std::make_unique<Operation>(
      OpKind::kAllReduce, std::vector<Value*>{x},
      std::vector<Type>{Type(TensorType({4, 4}))});
  reduce->attrs().Set("axes", Attr(std::vector<std::string>{"B"}));
  reduce->attrs().Set("reduction", Attr(std::string("sum")));
  Operation* reduce_op = func->body().Append(std::move(reduce));
  Operation* rs = AppendAxesPerDimCollective(
      func, OpKind::kReduceScatter, reduce_op->result(), {2, 4},
      AxesPerDim{{"B"}, {}});
  OpBuilder builder(&func->body());
  builder.Return({rs->result()});

  AnalysisReport report = analysis::AnalyzeSpmd(spmd);
  EXPECT_EQ(report.errors(), 0) << report.ToString();
  bool flagged = false;
  for (const analysis::Diagnostic& diag : report.diagnostics) {
    if (diag.checker_id == "redundant-collective" &&
        diag.message.find("re-reduces") != std::string::npos) {
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged) << report.ToString();
}

TEST(ShapeCheckerTest, MalformedAxesPerDimIsReported) {
  // The boundary-realization paths emit all_gather / reduce_scatter
  // directly, so a malformed axes_per_dim must produce an explicit shape
  // diagnostic (not a silent no-opinion that also disables the
  // divisibility check downstream).
  SpmdModule spmd;
  spmd.module = std::make_unique<Module>();
  spmd.mesh = Mesh({{"B", 2}});
  Func* func = spmd.module->AddFunc("main");
  Value* x = func->body().AddArg(TensorType({4, 4}), "x");
  Value* y = func->body().AddArg(TensorType({4, 4}), "y");
  // Unknown mesh axis on dim 0.
  Operation* bad_axis = AppendAxesPerDimCollective(
      func, OpKind::kAllGather, x, {8, 4}, AxesPerDim{{"Z"}, {}});
  // axes_per_dim rank disagrees with the operand rank.
  Operation* bad_rank = AppendAxesPerDimCollective(
      func, OpKind::kAllGather, y, {8, 4}, AxesPerDim{{"B"}});
  OpBuilder builder(&func->body());
  builder.Return({bad_axis->result(), bad_rank->result()});

  AnalysisReport report;
  CheckShapes(spmd, report);
  EXPECT_GE(report.errors(), 2) << report.ToString();
  EXPECT_TRUE(report.HasChecker("shape-check")) << report.ToString();
}

// ---- Every example workload analyzes clean ----

PartitionOptions WithAnalysis() {
  PartitionOptions options;
  options.analyze = true;
  return options;
}

void ExpectAnalyzesClean(const Executable& exe, const std::string& label) {
  AnalysisReport report = exe.Analyze();
  EXPECT_TRUE(report.clean()) << label << ":\n" << report.ToString();
  EXPECT_GE(report.checkers_run.size(), 4u) << label;
}

TEST(AnalysisWorkloadsTest, QuickstartChainBpMpZ3) {
  Program program("main");
  Value* x = program.AddInput(TensorType({256, 8}), "x");
  Value* w1 = program.AddInput(TensorType({8, 16}), "w1");
  Value* w2 = program.AddInput(TensorType({16, 8}), "w2");
  (void)x;
  OpBuilder& builder = program.builder();
  program.Return({builder.MatMul(builder.MatMul(x, w1), w2)});
  Executable exe =
      program
          .Partition({ManualPartition{"BP", {{"x", 0}}, "B"},
                      ManualPartition{"MP", {{"w1", 1}}, "M"},
                      ManualPartition{"Z3", {{"w1", 0}, {"w2", 1}}, "B"}},
                     Mesh({{"B", 4}, {"M", 2}}), WithAnalysis())
          .value();
  ExpectAnalyzesClean(exe, "quickstart");
  // The pipeline pass recorded its counts for pipeline_stats() and benches.
  EXPECT_GE(exe.pipeline_stats().analysis_checkers, 4);
  EXPECT_EQ(exe.pipeline_stats().analysis_errors, 0);
  EXPECT_FALSE(exe.analysis_report().checkers_run.empty());
  EXPECT_NE(exe.pipeline_stats().Find("static-analysis"), nullptr);
}

TransformerConfig SmallTransformer() {
  TransformerConfig config;
  config.num_layers = 1;
  config.d_model = 16;
  config.num_heads = 2;
  config.head_dim = 8;
  config.ffw_size = 32;
  config.vocab = 32;
  config.batch = 4;
  config.seq = 4;
  return config;
}

TEST(AnalysisWorkloadsTest, TransformerTrainingBpMp) {
  TransformerConfig config = SmallTransformer();
  Program program = Program::Capture([&](Module& module) {
    return BuildTransformerTrainingStep(module, config);
  });
  Executable exe =
      program
          .Partition({schedules::TransformerBP(), schedules::TransformerMP()},
                     Mesh({{"batch", 2}, {"model", 2}}), WithAnalysis())
          .value();
  ExpectAnalyzesClean(exe, "transformer training");
}

TEST(AnalysisWorkloadsTest, TransformerEmbBoundaryRealization) {
  // The boundary-realized standalone-EMB lowering (operand gathers at
  // normalization statistics, gradient-path reduce_scatters) must not trip
  // any checker: no gather/slice round-trips, no double reductions, clean
  // shapes through the new AG/RS sequences.
  TransformerConfig config = SmallTransformer();
  Program program = Program::Capture([&](Module& module) {
    return BuildTransformerTrainingStep(module, config);
  });
  Executable exe = program
                       .Partition({schedules::TransformerEMB()},
                                  Mesh({{"batch", 2}, {"model", 2}}),
                                  WithAnalysis())
                       .value();
  ExpectAnalyzesClean(exe, "transformer EMB boundary realization");
}

TEST(AnalysisWorkloadsTest, TransformerInferenceBp) {
  TransformerConfig config = SmallTransformer();
  Program program = Program::Capture([&](Module& module) {
    return BuildTransformerInference(module, config, /*decode_steps=*/2);
  });
  Executable exe = program
                       .Partition({schedules::InferenceBP()},
                                  Mesh({{"batch", 4}}), WithAnalysis())
                       .value();
  ExpectAnalyzesClean(exe, "transformer inference");
}

TEST(AnalysisWorkloadsTest, GnsEdgeSharding) {
  GnsConfig config;
  config.message_steps = 2;
  config.num_edges = 16;
  config.num_nodes = 8;
  Program program = Program::Capture(
      [&](Module& module) { return BuildGnsLoss(module, config); });
  Executable exe = program
                       .Partition({schedules::GnsES()}, Mesh({{"batch", 4}}),
                                  WithAnalysis())
                       .value();
  ExpectAnalyzesClean(exe, "gns edge sharding");
}

TEST(AnalysisWorkloadsTest, AutomaticPartitioning) {
  Program program("chain");
  Value* x = program.AddInput(TensorType({16, 8}), "x");
  Value* w1 = program.AddInput(TensorType({8, 8}), "w1");
  Value* w2 = program.AddInput(TensorType({8, 8}), "w2");
  (void)x;
  (void)w1;
  (void)w2;
  OpBuilder& builder = program.builder();
  program.Return({builder.MatMul(builder.MatMul(x, w1), w2)});
  AutomaticPartition automatic;
  automatic.name = "auto";
  automatic.axes = {"B"};
  automatic.options.simulations = 16;
  Executable exe =
      program.Partition({automatic}, Mesh({{"B", 4}}), WithAnalysis())
          .value();
  ExpectAnalyzesClean(exe, "automatic");
}

// ---- Every serving workload analyzes clean ----

TEST(AnalysisWorkloadsTest, ServingWorkloadsAnalyzeClean) {
  for (const ServeWorkload& workload : AllServeWorkloads()) {
    SCOPED_TRACE(workload.name);
    Program program = Program::Capture(workload.build, 4);
    StatusOr<Executable> exe =
        program.Partition(workload.schedule, workload.mesh, WithAnalysis());
    if (!exe.ok()) {
      exe = program.Partition({}, workload.mesh, WithAnalysis());
    }
    ASSERT_TRUE(exe.ok()) << exe.status().ToString();
    ExpectAnalyzesClean(*exe, workload.name);
  }
}

// ---- Persistence: the report survives SaveResult / load ----

TEST(AnalysisPersistTest, ReportRoundTripsThroughSaveResult) {
  Executable exe = PartitionedChain();
  std::string path = ::testing::TempDir() + "/analysis_result.bin";
  ASSERT_TRUE(exe.SaveResult(path).ok());

  StatusOr<std::string> bytes = persist::ReadFileToString(path);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  StatusOr<std::string> payload = persist::DecodeEntry(
      bytes.value(), persist::PayloadKind::kPartitionResult,
      "partir-partition-result");
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  StatusOr<PartitionResult> restored =
      persist::DeserializePartitionResult(payload.value());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  EXPECT_EQ(restored->analysis.checkers_run,
            exe.analysis_report().checkers_run);
  EXPECT_EQ(restored->analysis.diagnostics.size(),
            exe.analysis_report().diagnostics.size());
  EXPECT_EQ(restored->pipeline.analysis_checkers,
            exe.pipeline_stats().analysis_checkers);
  EXPECT_EQ(restored->pipeline.analysis_errors,
            exe.pipeline_stats().analysis_errors);
  EXPECT_EQ(restored->pipeline.analysis_warnings,
            exe.pipeline_stats().analysis_warnings);

  // A loaded result analyzes exactly as clean as the live one.
  AnalysisReport report = analysis::AnalyzeSpmd(restored->spmd);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// ---- The pipeline pass fails on an erroring module (never silently) ----

TEST(AnalysisPipelineTest, AnalyzeOffSkipsThePass) {
  Program program("chain");
  Value* x = program.AddInput(TensorType({16, 8}), "x");
  Value* w = program.AddInput(TensorType({8, 8}), "w");
  (void)x;
  (void)w;
  program.Return({program.builder().MatMul(x, w)});
  PartitionOptions options;
  options.analyze = false;
  Executable exe = program
                       .Partition({ManualPartition{"BP", {{"x", 0}}, "B"}},
                                  Mesh({{"B", 4}}), options)
                       .value();
  EXPECT_EQ(exe.pipeline_stats().Find("static-analysis"), nullptr);
  EXPECT_EQ(exe.pipeline_stats().analysis_checkers, 0);
  EXPECT_TRUE(exe.analysis_report().checkers_run.empty());
  // Analyze() still works on demand.
  EXPECT_TRUE(exe.Analyze().ok());
}

}  // namespace
}  // namespace partir

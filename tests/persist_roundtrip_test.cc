// Round-trip property tests for the persistent-cache serializer: every
// example and serving workload's PartitionResult must survive
// serialize -> deserialize with bit-identical Run outputs on both
// execution backends and identical stage-snapshot prints; traced modules
// must round-trip through Program::Save / Program::Load with equal
// structural fingerprints. This suite runs under the ThreadSanitizer and
// debug-verify CI jobs.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>

#include "src/api/partir.h"
#include "src/ir/fingerprint.h"
#include "src/ir/printer.h"
#include "src/models/gns.h"
#include "src/models/schedules.h"
#include "src/models/serving.h"
#include "src/models/transformer.h"
#include "src/persist/serializer.h"
#include "src/persist/store.h"
#include "src/serve/batcher.h"

namespace partir {
namespace {

using serving::AllServeWorkloads;
using serving::ServeWorkload;

/** Unique temp directory removed on scope exit. */
struct ScopedDir {
  explicit ScopedDir(const std::string& tag) {
    static int counter = 0;
    path = (std::filesystem::temp_directory_path() /
            (tag + "." + std::to_string(::getpid()) + "." +
             std::to_string(counter++)))
               .string();
    std::filesystem::create_directories(path);
  }
  ~ScopedDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

void ExpectBitIdentical(const std::vector<Tensor>& a,
                        const std::vector<Tensor>& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].dims(), b[i].dims()) << label << " output " << i;
    EXPECT_EQ(std::memcmp(a[i].data().data(), b[i].data().data(),
                          a[i].data().size() * sizeof(float)),
              0)
        << label << " output " << i << " is not bit-identical";
  }
}

/**
 * The round-trip property: serialize + deserialize the result, then check
 * the copy is observably identical — printed SPMD module, shardings,
 * metadata, every stage snapshot (including the aliasing structure), and
 * bit-identical Run outputs on the interpreting and compiled backends.
 */
void ExpectRoundTrips(const PartitionResult& original,
                      const std::vector<Tensor>& inputs,
                      const std::string& label) {
  std::string bytes = persist::SerializePartitionResult(original);
  StatusOr<PartitionResult> restored =
      persist::DeserializePartitionResult(bytes);
  ASSERT_TRUE(restored.ok()) << label << ": " << restored.status().ToString();

  EXPECT_EQ(Print(*original.spmd.module), Print(*restored->spmd.module))
      << label;
  EXPECT_EQ(original.spmd.mesh.ToString(), restored->spmd.mesh.ToString());
  ASSERT_EQ(original.spmd.input_shardings.size(),
            restored->spmd.input_shardings.size());
  for (size_t i = 0; i < original.spmd.input_shardings.size(); ++i) {
    EXPECT_EQ(original.spmd.input_shardings[i].axes,
              restored->spmd.input_shardings[i].axes);
  }
  ASSERT_EQ(original.spmd.output_shardings.size(),
            restored->spmd.output_shardings.size());
  for (size_t i = 0; i < original.spmd.output_shardings.size(); ++i) {
    EXPECT_EQ(original.spmd.output_shardings[i].axes,
              restored->spmd.output_shardings[i].axes);
  }

  // A compiled device program present before must be present after (and
  // the collective plan is always rebuilt).
  EXPECT_EQ(original.spmd.exec_program != nullptr,
            restored->spmd.exec_program != nullptr)
      << label;
  EXPECT_NE(restored->spmd.plan, nullptr) << label;

  // Metadata fidelity.
  EXPECT_EQ(original.collectives.ToString(), restored->collectives.ToString());
  EXPECT_EQ(original.estimate.ToString(), restored->estimate.ToString());
  EXPECT_EQ(original.partition_seconds, restored->partition_seconds);
  ASSERT_EQ(original.tactics.size(), restored->tactics.size());
  for (size_t i = 0; i < original.tactics.size(); ++i) {
    EXPECT_EQ(original.tactics[i].name, restored->tactics[i].name);
    EXPECT_EQ(original.tactics[i].actions_applied,
              restored->tactics[i].actions_applied);
    EXPECT_EQ(original.tactics[i].collectives.ToString(),
              restored->tactics[i].collectives.ToString());
    EXPECT_EQ(original.tactics[i].estimate.ToString(),
              restored->tactics[i].estimate.ToString());
  }
  ASSERT_EQ(original.conflicts.size(), restored->conflicts.size());
  for (size_t i = 0; i < original.conflicts.size(); ++i) {
    EXPECT_EQ(original.conflicts[i].axis, restored->conflicts[i].axis);
    EXPECT_EQ(original.conflicts[i].reason, restored->conflicts[i].reason);
  }
  ASSERT_EQ(original.pipeline.passes.size(), restored->pipeline.passes.size());
  EXPECT_EQ(original.pipeline.ToString(), restored->pipeline.ToString());

  // Stage snapshots: identical prints, and aliasing preserved — snapshots
  // sharing one module before the round trip share one after.
  ASSERT_EQ(original.snapshots.size(), restored->snapshots.size()) << label;
  for (size_t i = 0; i < original.snapshots.size(); ++i) {
    EXPECT_EQ(original.snapshots[i].pass, restored->snapshots[i].pass);
    EXPECT_EQ(original.snapshots[i].tactic_index,
              restored->snapshots[i].tactic_index);
    EXPECT_EQ(original.snapshots[i].final_loops,
              restored->snapshots[i].final_loops);
    EXPECT_EQ(original.snapshots[i].form, restored->snapshots[i].form);
    EXPECT_EQ(Print(*original.snapshots[i].module),
              Print(*restored->snapshots[i].module))
        << label << " snapshot " << i;
    for (size_t j = 0; j < i; ++j) {
      EXPECT_EQ(original.snapshots[i].module == original.snapshots[j].module,
                restored->snapshots[i].module == restored->snapshots[j].module)
          << label << " aliasing between snapshots " << j << " and " << i;
    }
  }

  // Execution fidelity, both backends, sequential and threaded.
  for (int num_threads : {1, 0}) {
    for (ExecBackend backend :
         {ExecBackend::kInterpret, ExecBackend::kCompiled}) {
      RunOptions run;
      run.num_threads = num_threads;
      run.backend = backend;
      StatusOr<std::vector<Tensor>> want = RunSpmd(original.spmd, inputs, run);
      StatusOr<std::vector<Tensor>> got = RunSpmd(restored->spmd, inputs, run);
      ASSERT_TRUE(want.ok()) << label << ": " << want.status().ToString();
      ASSERT_TRUE(got.ok()) << label << ": " << got.status().ToString();
      ExpectBitIdentical(*want, *got, label);
    }
  }
}

/** Runs the full pipeline with stage capture on and checks the property. */
void CheckWorkload(Program& program, const std::vector<Tactic>& schedule,
                   const Mesh& mesh, const std::vector<Tensor>& inputs,
                   const std::string& label) {
  PartitionOptions options;
  options.capture_stages = true;
  PartitionContext ctx(program.func(), mesh);
  StatusOr<PartitionResult> result = PartirJitOrError(ctx, schedule, options);
  ASSERT_TRUE(result.ok()) << label << ": " << result.status().ToString();
  ExpectRoundTrips(*result, inputs, label);
}

Program BuildChainProgram() {
  Program program("main");
  Value* x = program.AddInput(TensorType({256, 8}), "x");
  Value* w1 = program.AddInput(TensorType({8, 16}), "w1");
  Value* w2 = program.AddInput(TensorType({16, 8}), "w2");
  OpBuilder& builder = program.builder();
  program.Return({builder.MatMul(builder.MatMul(x, w1), w2)});
  return program;
}

TransformerConfig SmallTransformer() {
  TransformerConfig config;
  config.num_layers = 1;
  config.d_model = 16;
  config.num_heads = 2;
  config.head_dim = 8;
  config.ffw_size = 32;
  config.vocab = 32;
  config.batch = 4;
  config.seq = 4;
  return config;
}

// ---- The example workloads ----

TEST(PersistRoundTripTest, QuickstartChainBpMpZ3) {
  Program program = BuildChainProgram();
  CheckWorkload(program,
                {ManualPartition{"BP", {{"x", 0}}, "B"},
                 ManualPartition{"MP", {{"w1", 1}}, "M"},
                 ManualPartition{"Z3", {{"w1", 0}, {"w2", 1}}, "B"}},
                Mesh({{"B", 4}, {"M", 2}}), program.RandomInputs(1),
                "quickstart");
}

TEST(PersistRoundTripTest, TransformerTrainingBpMp) {
  TransformerConfig config = SmallTransformer();
  Program program = Program::Capture([&](Module& module) {
    return BuildTransformerTrainingStep(module, config);
  });
  CheckWorkload(
      program, {schedules::TransformerBP(), schedules::TransformerMP()},
      Mesh({{"batch", 2}, {"model", 2}}),
      program.RandomInputs(21, static_cast<float>(config.vocab)),
      "transformer training");
}

TEST(PersistRoundTripTest, TransformerInferenceBp) {
  TransformerConfig config = SmallTransformer();
  Program program = Program::Capture([&](Module& module) {
    return BuildTransformerInference(module, config, /*decode_steps=*/2);
  });
  CheckWorkload(program, {schedules::InferenceBP()}, Mesh({{"batch", 4}}),
                program.RandomInputs(22, static_cast<float>(config.vocab)),
                "transformer inference");
}

TEST(PersistRoundTripTest, GnsEdgeSharding) {
  GnsConfig config;
  config.message_steps = 2;
  config.num_edges = 16;
  config.num_nodes = 8;
  Program program = Program::Capture(
      [&](Module& module) { return BuildGnsLoss(module, config); });
  CheckWorkload(program, {schedules::GnsES()}, Mesh({{"batch", 4}}),
                program.RandomInputs(23, static_cast<float>(config.num_nodes)),
                "gns edge sharding");
}

TEST(PersistRoundTripTest, AutomaticPartitioning) {
  Program program = BuildChainProgram();
  AutomaticPartition automatic;
  automatic.name = "auto";
  automatic.axes = {"B"};
  automatic.options.simulations = 16;
  CheckWorkload(program, {automatic}, Mesh({{"B", 4}}),
                program.RandomInputs(24), "automatic");
}

// ---- All five serving workloads ----

TEST(PersistRoundTripTest, ServingWorkloadsRoundTrip) {
  for (const ServeWorkload& workload : AllServeWorkloads()) {
    SCOPED_TRACE(workload.name);
    Program program = Program::Capture(workload.build, /*batch=*/4);
    std::vector<Tensor> inputs =
        program.RandomInputs(31, workload.index_modulus);
    PartitionContext ctx(program.func(), workload.mesh);
    PartitionOptions options;
    options.capture_stages = true;
    StatusOr<PartitionResult> result =
        PartirJitOrError(ctx, workload.schedule, options);
    if (!result.ok()) {
      // Batch sizes the schedule cannot shard serve unpartitioned (the
      // batcher's fallback); the serializer must cover that shape too.
      PartitionContext fallback(program.func(), workload.mesh);
      result = PartirJitOrError(fallback, {}, options);
    }
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectRoundTrips(*result, inputs, workload.name);
  }
}

// ---- Module and Program facade round trips ----

TEST(PersistRoundTripTest, ModuleBytesRoundTripPrintAndFingerprint) {
  Program program = BuildChainProgram();
  std::string bytes = persist::SerializeModule(program.module());
  StatusOr<std::unique_ptr<Module>> restored =
      persist::DeserializeModule(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(Print(*program.func()), Print(*(*restored)->main()));
  EXPECT_EQ(FingerprintFunc(*program.func()),
            FingerprintFunc(*(*restored)->main()));
  // Deterministic bytes: re-serializing the restored module is identical.
  EXPECT_EQ(bytes, persist::SerializeModule(**restored));
}

TEST(PersistRoundTripTest, ProgramSaveLoadPartitionsIdentically) {
  ScopedDir dir("partir-saveload");
  std::string path = dir.path + "/chain.program";

  Program original = BuildChainProgram();
  ASSERT_TRUE(original.Save(path).ok());

  StatusOr<Program> loaded = Program::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(original.Print(), loaded->Print());
  EXPECT_EQ(original.TraceFingerprint(), loaded->TraceFingerprint());
  EXPECT_TRUE(loaded->sealed());
  EXPECT_EQ(original.num_inputs(), loaded->num_inputs());

  // The loaded program partitions and runs identically to the original.
  Mesh mesh({{"B", 4}, {"M", 2}});
  std::vector<Tactic> schedule = {ManualPartition{"BP", {{"x", 0}}, "B"},
                                  ManualPartition{"MP", {{"w1", 1}}, "M"}};
  Executable exe_a = original.Partition(schedule, mesh).value();
  Executable exe_b = loaded->Partition(schedule, mesh).value();
  std::vector<Tensor> inputs = original.RandomInputs(7);
  ExpectBitIdentical(exe_a.Run(inputs).value(), exe_b.Run(inputs).value(),
                     "save/load");
}

TEST(PersistRoundTripTest, ExecutableSaveResultRoundTrips) {
  ScopedDir dir("partir-saveresult");
  std::string path = dir.path + "/chain.result";

  Program program = BuildChainProgram();
  Mesh mesh({{"B", 4}});
  Executable exe =
      program.Partition({ManualPartition{"BP", {{"x", 0}}, "B"}}, mesh)
          .value();
  ASSERT_TRUE(exe.SaveResult(path).ok());

  StatusOr<std::string> bytes = persist::ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  StatusOr<std::string> payload = persist::DecodeEntry(
      *bytes, persist::PayloadKind::kPartitionResult,
      "partir-partition-result");
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  StatusOr<PartitionResult> restored =
      persist::DeserializePartitionResult(*payload);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  std::vector<Tensor> inputs = program.RandomInputs(9);
  ExpectBitIdentical(exe.Run(inputs).value(),
                     RunSpmd(restored->spmd, inputs, {}).value(),
                     "SaveResult");
}

// ---- The serving batcher warms from disk ----

TEST(PersistRoundTripTest, BatcherWarmsFromDiskCache) {
  ScopedDir dir("partir-batcher-cache");
  ServeWorkload workload = serving::MatMulChainWorkload();

  BatchOptions batch_options;
  batch_options.max_batch = 2;
  batch_options.max_delay_us = 0;
  PartitionOptions partition_options;
  partition_options.cache_dir = dir.path;

  auto factory = [&](const std::string&, int64_t batch) {
    return StatusOr<Program>(Program::Capture(workload.build, batch));
  };
  serving::WorkloadHarness harness(workload);
  std::vector<Tensor> outputs_cold;

  // Process-A stand-in: compile through an empty disk cache and persist.
  {
    auto cache = std::make_shared<PartitionCache>();
    Batcher batcher(factory, workload.schedule, workload.mesh, batch_options,
                    partition_options, cache);
    ServeFuture future = batcher.Submit(harness.Request(1));
    ServeResponse response = future.get();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    outputs_cold = *response;
    PartitionCacheStats stats = cache->stats();
    EXPECT_EQ(stats.disk_hits, 0);
    EXPECT_GT(stats.disk_misses, 0);
    cache->FlushDiskWrites();
    EXPECT_GT(cache->stats().disk_writes, 0);
  }

  // Process-B stand-in: a fresh batcher + fresh cache over the same
  // directory must warm from disk instead of recompiling.
  {
    auto cache = std::make_shared<PartitionCache>();
    Batcher batcher(factory, workload.schedule, workload.mesh, batch_options,
                    partition_options, cache);
    ServeFuture future = batcher.Submit(harness.Request(1));
    ServeResponse response = future.get();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ExpectBitIdentical(outputs_cold, *response, "disk-warm batcher");
    PartitionCacheStats stats = cache->stats();
    EXPECT_GT(stats.disk_hits, 0);
    EXPECT_EQ(stats.disk_corrupt, 0);
  }
}

}  // namespace
}  // namespace partir

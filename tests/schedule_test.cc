// Tests for the Program/Executable facade and the Status-based error
// surface: PartirJit end-to-end through one Partition call, the incremental
// vs PartIR-st ablation (Section 7.4), TacticReport metadata, stage
// printing, Respecialize, and every typed error path (bad axis name,
// indivisible dim, unmatched key, unsealed program, bad Run inputs).
#include <gtest/gtest.h>

#include "src/api/partir.h"

namespace partir {
namespace {

/** The Listing-1 chain: x[rows,32] @ w1[32,64] -> tanh -> @ w2[64,32]. */
Program BuildChainProgram(int64_t rows = 64) {
  Program program("main");
  Value* x = program.AddInput(TensorType({rows, 32}), "x");
  Value* w1 = program.AddInput(TensorType({32, 64}), "w1");
  Value* w2 = program.AddInput(TensorType({64, 32}), "w2");
  OpBuilder& b = program.builder();
  Value* h = b.Tanh(b.MatMul(x, w1));
  program.Return({b.MatMul(h, w2)});
  return program;
}

std::vector<Tactic> BpMpSchedule() {
  return {ManualPartition{"BP", {{"x", 0}}, "B"},
          ManualPartition{"MP", {{"w1", 1}}, "M"}};
}

// ---- Status / StatusOr basics ----

TEST(StatusTest, OkAndErrorCarryCodeAndMessage) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");

  Status err = InvalidArgumentError("bad axis '", "Q", "'");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.message(), "bad axis 'Q'");
  EXPECT_EQ(err.ToString(), "INVALID_ARGUMENT: bad axis 'Q'");
}

TEST(StatusTest, StatusOrHoldsMoveOnlyValues) {
  StatusOr<std::unique_ptr<int>> holder(std::make_unique<int>(42));
  ASSERT_TRUE(holder.ok());
  std::unique_ptr<int> out = std::move(holder).value();
  EXPECT_EQ(*out, 42);

  StatusOr<std::unique_ptr<int>> error(NotFoundError("nothing here"));
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kNotFound);
}

// ---- End-to-end facade ----

TEST(FacadeTest, PartitionRunsEndToEnd) {
  Program program = BuildChainProgram();
  StatusOr<Executable> compiled =
      program.Partition(BpMpSchedule(), Mesh({{"B", 4}, {"M", 2}}));
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  Executable exe = std::move(compiled).value();

  // The partitioned program computes the same function as the reference.
  std::vector<Tensor> inputs = program.RandomInputs(/*seed=*/7);
  StatusOr<std::vector<Tensor>> want = program.Evaluate(inputs);
  StatusOr<std::vector<Tensor>> got = exe.Run(inputs);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(want->size(), got->size());
  EXPECT_LT(Tensor::MaxAbsDiff((*want)[0], (*got)[0]), 1e-3f);

  // The batch input is sharded on B; a weight picked up the M axis.
  EXPECT_EQ(exe.num_inputs(), 3);
  EXPECT_EQ(exe.input_sharding(0).axes[0].size(), 1u);
  EXPECT_EQ(exe.input_sharding(0).axes[0][0], "B");
}

TEST(FacadeTest, TacticReportsCarryPerTacticMetadata) {
  Program program = BuildChainProgram();
  PartitionOptions options;
  options.per_tactic_reports = true;
  StatusOr<Executable> exe =
      program.Partition(BpMpSchedule(), Mesh({{"B", 4}, {"M", 2}}), options);
  ASSERT_TRUE(exe.ok()) << exe.status().ToString();
  ASSERT_EQ(exe->tactics().size(), 2u);
  EXPECT_EQ(exe->tactics()[0].name, "BP");
  EXPECT_EQ(exe->tactics()[1].name, "MP");
  EXPECT_GT(exe->tactics()[0].actions_applied, 0);
  EXPECT_GT(exe->tactics()[0].estimate.step_seconds, 0);
  EXPECT_GE(exe->tactics()[0].tactic_seconds, 0);
  // MP introduces the contraction all_reduce; BP alone has none.
  EXPECT_EQ(exe->tactics()[0].collectives.all_reduce, 0);
  EXPECT_EQ(exe->tactics()[1].collectives.all_reduce, 1);
  // Memory drops as the second tactic shards the weights.
  EXPECT_LE(exe->tactics()[1].estimate.peak_memory_bytes,
            exe->tactics()[0].estimate.peak_memory_bytes);
}

TEST(FacadeTest, IncrementalBeatsSinglePropagationAblation) {
  // Conflicting seeds (Section 5.2.3): x(dim0) and w1(dim1) on the same
  // axis. Incremental PartIR lets BP propagate first (tactic order wins);
  // PartIR-st (the Section 7.4 ablation) amalgamates the tactics and the
  // conflict blocks propagation entirely.
  std::vector<Tactic> conflicting = {ManualPartition{"BP", {{"x", 0}}, "B"},
                                     ManualPartition{"Z", {{"w1", 1}}, "B"}};
  Mesh mesh({{"B", 4}});

  Program incremental_program = BuildChainProgram();
  PartitionOptions incremental_options;
  incremental_options.per_tactic_reports = false;
  StatusOr<Executable> incremental = incremental_program.Partition(
      conflicting, mesh, incremental_options);
  ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();

  Program st_program = BuildChainProgram();
  PartitionOptions st_options = incremental_options;
  st_options.incremental = false;  // PartIR-st
  StatusOr<Executable> st = st_program.Partition(conflicting, mesh,
                                                 st_options);
  ASSERT_TRUE(st.ok()) << st.status().ToString();

  EXPECT_FALSE(st->conflicts().empty());
  // Incremental propagation shards the compute; the amalgamated ablation
  // leaves it replicated, so its estimated step time is strictly worse.
  EXPECT_LT(incremental->Estimate().step_seconds,
            st->Estimate().step_seconds);
}

TEST(FacadeTest, RespecializeReusesTheTrace) {
  Program program = BuildChainProgram();
  Mesh mesh({{"B", 4}, {"M", 2}});
  StatusOr<Executable> bp = program.Partition(
      {ManualPartition{"BP", {{"x", 0}}, "B"}}, mesh);
  ASSERT_TRUE(bp.ok());

  StatusOr<Executable> mp = bp->Respecialize(
      {ManualPartition{"MP", {{"w1", 1}}, "M"}});
  ASSERT_TRUE(mp.ok()) << mp.status().ToString();

  // The two strategies shard different inputs...
  EXPECT_EQ(bp->input_sharding(0).axes[0].size(), 1u);   // x on B
  EXPECT_TRUE(mp->input_sharding(0).axes[0].empty());    // x replicated
  EXPECT_EQ(mp->input_sharding(1).axes[1].size(), 1u);   // w1 on M

  // ...and both still compute the reference function.
  std::vector<Tensor> inputs = program.RandomInputs(/*seed=*/3);
  std::vector<Tensor> want = program.Evaluate(inputs).value();
  EXPECT_LT(Tensor::MaxAbsDiff(want[0], bp->Run(inputs).value()[0]), 1e-3f);
  EXPECT_LT(Tensor::MaxAbsDiff(want[0], mp->Run(inputs).value()[0]), 1e-3f);
}

TEST(FacadeTest, ExecutableOutlivesItsProgram) {
  // Executables share ownership of the traced module, so long-lived
  // executables (caches, serving) stay valid after the Program is gone.
  Executable exe = [] {
    Program program = BuildChainProgram();
    return std::move(program.Partition(BpMpSchedule(),
                                       Mesh({{"B", 4}, {"M", 2}}))
                         .value());
  }();
  StatusOr<std::vector<Tensor>> got = exe.Run(
      {Tensor::Random({64, 32}, 11), Tensor::Random({32, 64}, 12),
       Tensor::Random({64, 32}, 13)});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(exe.Print(Stage::Source()).ok());
  StatusOr<Executable> respecialized = exe.Respecialize(
      {ManualPartition{"BP", {{"x", 0}}, "B"}});
  EXPECT_TRUE(respecialized.ok());
}

TEST(FacadeTest, PrintExposesEveryStage) {
  Program program = BuildChainProgram();
  PartitionOptions capture;
  capture.capture_stages = true;
  StatusOr<Executable> exe = program.Partition(
      BpMpSchedule(), Mesh({{"B", 4}, {"M", 2}}), capture);
  ASSERT_TRUE(exe.ok());

  StatusOr<std::string> source = exe->Print(Stage::Source());
  ASSERT_TRUE(source.ok());
  EXPECT_NE(source->find("dot"), std::string::npos);

  // The loop form after BP has a loop over B but no M loop yet.
  StatusOr<std::string> after_bp = exe->Print(Stage::AfterTactic(0));
  ASSERT_TRUE(after_bp.ok()) << after_bp.status().ToString();
  EXPECT_NE(after_bp->find("axis = \"B\""), std::string::npos);
  EXPECT_EQ(after_bp->find("axis = \"M\""), std::string::npos);

  StatusOr<std::string> after_mp = exe->Print(Stage::AfterTactic(1));
  ASSERT_TRUE(after_mp.ok());
  EXPECT_NE(after_mp->find("axis = \"M\""), std::string::npos);

  StatusOr<std::string> loops = exe->Print(Stage::Loops());
  ASSERT_TRUE(loops.ok());

  StatusOr<std::string> spmd = exe->Print(Stage::Spmd());
  ASSERT_TRUE(spmd.ok());
  EXPECT_NE(spmd->find("all_reduce"), std::string::npos);

  // Out-of-range stage index is a typed error.
  StatusOr<std::string> missing = exe->Print(Stage::AfterTactic(99));
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);

  // Stages are absent (with a message) by default (capture is opt-in).
  PartitionOptions no_capture;
  no_capture.per_tactic_reports = false;
  StatusOr<Executable> bare = program.Partition(
      BpMpSchedule(), Mesh({{"B", 4}, {"M", 2}}), no_capture);
  ASSERT_TRUE(bare.ok());
  StatusOr<std::string> uncaptured = bare->Print(Stage::AfterTactic(0));
  EXPECT_FALSE(uncaptured.ok());
  EXPECT_NE(uncaptured.status().message().find("capture_stages"),
            std::string::npos);
}

// ---- Typed error paths ----

TEST(FacadeErrorTest, BadAxisNameNamesTheAxis) {
  Program program = BuildChainProgram();
  StatusOr<Executable> exe = program.Partition(
      {ManualPartition{"BP", {{"x", 0}}, "Q"}}, Mesh({{"B", 4}}));
  ASSERT_FALSE(exe.ok());
  EXPECT_EQ(exe.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(exe.status().message().find("'Q'"), std::string::npos);
  EXPECT_NE(exe.status().message().find("BP"), std::string::npos);
}

TEST(FacadeErrorTest, UnmatchedKeyNamesTheKey) {
  // The satellite fix: a typo'd key used to silently change the strategy.
  Program program = BuildChainProgram();
  StatusOr<Executable> exe = program.Partition(
      {ManualPartition{"BP", {{"nonexistent_input", 0}}, "B"}},
      Mesh({{"B", 4}}));
  ASSERT_FALSE(exe.ok());
  EXPECT_EQ(exe.status().code(), StatusCode::kNotFound);
  EXPECT_NE(exe.status().message().find("nonexistent_input"),
            std::string::npos);
}

TEST(FacadeErrorTest, IndivisibleDimNamesSizes) {
  // rows=63 is not divisible by the 4-way B axis.
  Program program = BuildChainProgram(/*rows=*/63);
  StatusOr<Executable> exe = program.Partition(
      {ManualPartition{"BP", {{"x", 0}}, "B"}}, Mesh({{"B", 4}}));
  ASSERT_FALSE(exe.ok());
  EXPECT_EQ(exe.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(exe.status().message().find("not divisible"), std::string::npos);
  EXPECT_NE(exe.status().message().find("63"), std::string::npos);
}

TEST(FacadeErrorTest, DimOutOfRangeIsTyped) {
  Program program = BuildChainProgram();
  StatusOr<Executable> exe = program.Partition(
      {ManualPartition{"BP", {{"x", 5}}, "B"}}, Mesh({{"B", 4}}));
  ASSERT_FALSE(exe.ok());
  EXPECT_EQ(exe.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(exe.status().message().find("out of range"), std::string::npos);
}

TEST(FacadeErrorTest, UnsealedProgramCannotPartitionOrEvaluate) {
  Program program("unfinished");
  program.AddInput(TensorType({8, 8}), "x");
  StatusOr<Executable> exe = program.Partition({}, Mesh({{"B", 4}}));
  ASSERT_FALSE(exe.ok());
  EXPECT_EQ(exe.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(exe.status().message().find("Return"), std::string::npos);
  EXPECT_FALSE(program.Evaluate({Tensor({8, 8})}).ok());
}

TEST(FacadeErrorTest, RunValidatesInputCountAndShape) {
  Program program = BuildChainProgram();
  StatusOr<Executable> exe =
      program.Partition(BpMpSchedule(), Mesh({{"B", 4}, {"M", 2}}));
  ASSERT_TRUE(exe.ok());

  StatusOr<std::vector<Tensor>> too_few = exe->Run({Tensor({64, 32})});
  ASSERT_FALSE(too_few.ok());
  EXPECT_EQ(too_few.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(too_few.status().message().find("expected 3"),
            std::string::npos);

  StatusOr<std::vector<Tensor>> bad_shape = exe->Run(
      {Tensor({64, 32}), Tensor({32, 64}), Tensor({7, 7})});
  ASSERT_FALSE(bad_shape.ok());
  EXPECT_NE(bad_shape.status().message().find("w2"), std::string::npos);
}

TEST(FacadeErrorTest, AutomaticTacticValidatesAxes) {
  Program program = BuildChainProgram();
  AutomaticPartition automatic;
  automatic.name = "auto";
  automatic.axes = {"B", "bogus"};
  automatic.options.simulations = 2;
  StatusOr<Executable> exe =
      program.Partition({automatic}, Mesh({{"B", 4}}));
  ASSERT_FALSE(exe.ok());
  EXPECT_NE(exe.status().message().find("bogus"), std::string::npos);
}

// ---- Context-level Status surface ----

TEST(TileValueOrErrorTest, EveryFailureCarriesAMessage) {
  Program program = BuildChainProgram();
  Value* x = program.input(0);
  PartitionContext ctx(program.func(), Mesh({{"B", 4}}));

  Status unknown_axis = ctx.TileValueOrError(x, 0, "Z");
  ASSERT_FALSE(unknown_axis.ok());
  EXPECT_NE(unknown_axis.message().find("'Z'"), std::string::npos);

  Status out_of_range = ctx.TileValueOrError(x, 9, "B");
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.code(), StatusCode::kInvalidArgument);

  ASSERT_TRUE(ctx.TileValueOrError(x, 0, "B").ok());
  Status duplicate = ctx.TileValueOrError(x, 1, "B");
  ASSERT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(duplicate.message().find("already tiled"), std::string::npos);

  Value* w1 = program.input(1);
  ctx.AtomicValue(w1, "B");
  Status atomic = ctx.TileValueOrError(w1, 0, "B");
  ASSERT_FALSE(atomic.ok());
  EXPECT_NE(atomic.message().find("atomic"), std::string::npos);

  // The deprecated bool shim still reports success/failure.
  EXPECT_FALSE(ctx.TileValue(w1, 0, "B"));
}

TEST(ApplyManualTacticOrErrorTest, CountsActionsAndSkipsStateConflicts) {
  Program program = BuildChainProgram();
  PartitionContext ctx(program.func(), Mesh({{"B", 4}}));
  // First application tiles x; re-applying the same tactic is a no-op, not
  // an error (re-stated placements are resolved by tactic order).
  ManualPartition bp{"BP", {{"x", 0}}, "B"};
  StatusOr<int> first = ApplyManualTacticOrError(ctx, bp);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), 1);
  StatusOr<int> again = ApplyManualTacticOrError(ctx, bp);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), 0);
}

}  // namespace
}  // namespace partir

// Tests for the pass-manager compilation pipeline: pass ordering, per-pass
// statistics accumulation (including fixpoint groups), verifier failures
// surfacing as typed Status (never an abort), snapshot capture per stage,
// the collective-plan invalidation helper, the new reduce-scatter-formation
// cases, and bit-identical Executable::Run outputs versus the pre-refactor
// pipeline (the same stage functions composed by hand) on all five example
// workloads.
#include <gtest/gtest.h>

#include <cstring>

#include "src/api/partir.h"
#include "src/autopart/mcts.h"
#include "src/ir/builder.h"
#include "src/ir/passes.h"
#include "src/models/gns.h"
#include "src/models/schedules.h"
#include "src/models/transformer.h"
#include "src/pass/pass_manager.h"
#include "src/pass/passes.h"
#include "src/pass/pipeline.h"
#include "src/spmd/collectives.h"
#include "src/spmd/spmd_interpreter.h"

namespace partir {
namespace {

// ---- Framework scaffolding ----

/** A tiny sealed program to thread a PipelineState through. */
struct Fixture {
  Fixture() : program("fixture") {
    x = program.AddInput(TensorType({16, 8}), "x");
    w = program.AddInput(TensorType({8, 8}), "w");
    program.Return({program.builder().MatMul(x, w)});
  }
  Program program;
  Value* x;
  Value* w;
  std::vector<Tactic> schedule;
  PartitionOptions options;
  PartitionResult result;
};

/** Appends its label to a shared log; optionally reports fake changes. */
class RecordingPass : public Pass {
 public:
  RecordingPass(std::string label, std::vector<std::string>* log,
                int* changes_budget = nullptr)
      : label_(std::move(label)), log_(log),
        changes_budget_(changes_budget) {}
  std::string name() const override { return label_; }
  Status Run(PipelineState& state) override {
    log_->push_back(label_);
    if (changes_budget_ != nullptr && *changes_budget_ > 0) {
      --*changes_budget_;
      state.changes = 1;
    }
    return Status::Ok();
  }

 private:
  std::string label_;
  std::vector<std::string>* log_;
  int* changes_budget_;
};

TEST(PassManagerTest, RunsPassesInRegistrationOrder) {
  Fixture fixture;
  PartitionContext ctx(fixture.program.func(), Mesh({{"B", 4}}));
  PipelineState state(ctx, fixture.schedule, fixture.options, fixture.result);
  std::vector<std::string> log;
  PassManager manager;
  manager.AddPass(std::make_unique<RecordingPass>("first", &log))
      .AddPass(std::make_unique<RecordingPass>("second", &log))
      .AddPass(std::make_unique<RecordingPass>("third", &log));
  ASSERT_TRUE(manager.Run(state).ok());
  EXPECT_EQ(log, (std::vector<std::string>{"first", "second", "third"}));
  ASSERT_EQ(manager.stats().passes.size(), 3u);
  EXPECT_EQ(manager.stats().passes[0].name, "first");
  EXPECT_EQ(manager.stats().passes[2].name, "third");
  for (const PassStats& stats : manager.stats().passes) {
    EXPECT_EQ(stats.runs, 1);
  }
}

TEST(PassManagerTest, FixpointGroupRepeatsUntilNoChanges) {
  Fixture fixture;
  PartitionContext ctx(fixture.program.func(), Mesh({{"B", 4}}));
  PipelineState state(ctx, fixture.schedule, fixture.options, fixture.result);
  std::vector<std::string> log;
  int budget = 3;  // first three runs report a change, then quiescent
  std::vector<std::unique_ptr<Pass>> group;
  group.push_back(
      std::make_unique<RecordingPass>("rewrite", &log, &budget));
  group.push_back(std::make_unique<RecordingPass>("cleanup", &log));
  PassManager manager;
  manager.AddFixpoint(std::move(group), /*max_iterations=*/8);
  ASSERT_TRUE(manager.Run(state).ok());
  // Iterations 1..3 apply a change; iteration 4 is quiescent and stops.
  ASSERT_EQ(manager.stats().passes.size(), 2u);
  EXPECT_EQ(manager.stats().passes[0].runs, 4);
  EXPECT_EQ(manager.stats().passes[0].changes, 3);
  EXPECT_EQ(manager.stats().passes[1].runs, 4);
  EXPECT_EQ(log.size(), 8u);
}

TEST(PassManagerTest, FixpointGroupHonorsMaxIterations) {
  Fixture fixture;
  PartitionContext ctx(fixture.program.func(), Mesh({{"B", 4}}));
  PipelineState state(ctx, fixture.schedule, fixture.options, fixture.result);
  std::vector<std::string> log;
  int budget = 100;  // never quiescent
  std::vector<std::unique_ptr<Pass>> group;
  group.push_back(
      std::make_unique<RecordingPass>("rewrite", &log, &budget));
  PassManager manager;
  manager.AddFixpoint(std::move(group), /*max_iterations=*/3);
  ASSERT_TRUE(manager.Run(state).ok());
  EXPECT_EQ(manager.stats().passes[0].runs, 3);
}

// ---- Verifier failures surface as typed Status ----

/** Corrupts the traced function with a type-mismatched op. */
class CorruptingPass : public Pass {
 public:
  std::string name() const override { return "corrupt"; }
  Status Run(PipelineState& state) override {
    Block& body = state.ctx.func()->body();
    OpBuilder builder(&body);
    // neg(16x8) typed as 4x4: the unary-elementwise verifier rule fails.
    builder.Create(OpKind::kNeg, {body.arg(0)}, {TensorType({4, 4})});
    state.changes = 1;
    return Status::Ok();
  }
};

TEST(PassManagerTest, VerifierFailureIsTypedStatusNamingThePass) {
  Fixture fixture;
  PartitionContext ctx(fixture.program.func(), Mesh({{"B", 4}}));
  PipelineState state(ctx, fixture.schedule, fixture.options, fixture.result);
  PipelineOptions options;
  options.verify_after_each_pass = true;
  PassManager manager(options);
  std::vector<std::string> log;
  manager.AddPass(std::make_unique<CorruptingPass>())
      .AddPass(std::make_unique<RecordingPass>("after", &log));
  Status status = manager.Run(state);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("corrupt"), std::string::npos);
  // The pipeline stopped: the pass after the violation never ran.
  EXPECT_TRUE(log.empty());
}

TEST(PassManagerTest, VerificationOffSkipsTheCheck) {
  Fixture fixture;
  PartitionContext ctx(fixture.program.func(), Mesh({{"B", 4}}));
  PipelineState state(ctx, fixture.schedule, fixture.options, fixture.result);
  PipelineOptions options;
  options.verify_after_each_pass = false;
  PassManager manager(options);
  manager.AddPass(std::make_unique<CorruptingPass>());
  EXPECT_TRUE(manager.Run(state).ok());
  EXPECT_EQ(manager.stats().verify_runs, 0);
}

/** A pass whose Run itself fails. */
class FailingPass : public Pass {
 public:
  std::string name() const override { return "failing"; }
  Status Run(PipelineState&) override {
    return InvalidArgumentError("intentional failure");
  }
};

TEST(PassManagerTest, PassErrorIsPrefixedWithThePassName) {
  Fixture fixture;
  PartitionContext ctx(fixture.program.func(), Mesh({{"B", 4}}));
  PipelineState state(ctx, fixture.schedule, fixture.options, fixture.result);
  PassManager manager;
  manager.AddPass(std::make_unique<FailingPass>());
  Status status = manager.Run(state);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("pass 'failing'"), std::string::npos);
}

// ---- Pipeline statistics through the facade ----

TEST(PipelineStatsTest, PerPassTimingsAndOpDeltasAreRecorded) {
  TransformerConfig config;
  config.num_layers = 1;
  config.d_model = 16;
  config.num_heads = 2;
  config.head_dim = 8;
  config.ffw_size = 32;
  config.vocab = 32;
  config.batch = 4;
  config.seq = 4;
  Program program = Program::Capture([&](Module& module) {
    return BuildTransformerTrainingStep(module, config);
  });
  Mesh mesh({{"batch", 2}, {"model", 2}});
  Executable exe =
      program
          .Partition({schedules::TransformerBP(), schedules::TransformerMP()},
                     mesh)
          .value();

  const PipelineStats& stats = exe.pipeline_stats();
  ASSERT_FALSE(stats.passes.empty());
  EXPECT_GT(stats.total_seconds, 0.0);
  double pass_seconds = 0;
  for (const PassStats& pass : stats.passes) {
    EXPECT_GE(pass.runs, 1) << pass.name;
    pass_seconds += pass.seconds;
  }
  EXPECT_GT(pass_seconds, 0.0);

  const PassStats* lower = stats.Find("lower-to-spmd");
  ASSERT_NE(lower, nullptr);
  EXPECT_EQ(lower->runs, 1);
  EXPECT_TRUE(lower->lowered);
  EXPECT_GT(lower->ops_after, 0);

  // The collective-optimization fixpoint ran to quiescence and its members
  // report per-stage collective counts matching the final module.
  const PassStats* form_rs = stats.Find("form-reduce-scatter");
  ASSERT_NE(form_rs, nullptr);
  EXPECT_GE(form_rs->runs, 2);  // at least one quiescent confirmation round
  EXPECT_TRUE(form_rs->lowered);
  // plan-collectives runs once after the fixpoint converged, so its counts
  // are the final Table 3 numbers.
  const PassStats* plan = stats.Find("plan-collectives");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->collectives.all_reduce, exe.Collectives().all_reduce);

  // Propagation ran once per tactic and applied nest entries.
  const PassStats* propagate = stats.Find("propagate");
  ASSERT_NE(propagate, nullptr);
  EXPECT_GT(propagate->changes, 0);
  EXPECT_EQ(stats.Find("tactic[0]:BP")->runs, 1);
  EXPECT_EQ(stats.Find("tactic[1]:MP")->runs, 1);

  // Per-tactic wall-clock was attributed from the per-pass timings.
  ASSERT_EQ(exe.tactics().size(), 2u);
  EXPECT_GT(exe.tactics()[0].tactic_seconds, 0.0);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(PipelineStatsTest, CacheHitCarriesTheMissRunStats) {
  Program program("cached");
  Value* x = program.AddInput(TensorType({16, 8}), "x");
  Value* w = program.AddInput(TensorType({8, 8}), "w");
  program.Return({program.builder().MatMul(x, w)});
  Mesh mesh({{"B", 4}});
  std::vector<Tactic> schedule = {ManualPartition{"BP", {{"x", 0}}, "B"}};
  Executable miss = program.Partition(schedule, mesh).value();
  Executable hit = program.Partition(schedule, mesh).value();
  EXPECT_EQ(program.cache_stats().hits, 1);
  ASSERT_FALSE(hit.pipeline_stats().passes.empty());
  EXPECT_EQ(hit.pipeline_stats().passes.size(),
            miss.pipeline_stats().passes.size());
}

// ---- Snapshot capture per stage ----

TEST(SnapshotTest, CapturesEveryTacticPrefixAndFinalForms) {
  Program program("snap");
  Value* x = program.AddInput(TensorType({16, 8}), "x");
  Value* w1 = program.AddInput(TensorType({8, 12}), "w1");
  Value* w2 = program.AddInput(TensorType({12, 8}), "w2");
  OpBuilder& builder = program.builder();
  program.Return({builder.MatMul(builder.MatMul(x, w1), w2)});
  Mesh mesh({{"B", 4}, {"M", 2}});
  std::vector<Tactic> schedule = {
      ManualPartition{"BP", {{"x", 0}}, "B"},
      ManualPartition{"MP", {{"w1", 1}}, "M"},
  };
  PartitionOptions options;
  options.capture_stages = true;
  Executable exe = program.Partition(schedule, mesh, options).value();

  // One loop-form snapshot per tactic prefix plus the final loop form.
  ASSERT_EQ(exe.snapshots().size(), 3u);
  EXPECT_EQ(exe.snapshots()[0].tactic_index, 0);
  EXPECT_EQ(exe.snapshots()[1].tactic_index, 1);
  EXPECT_TRUE(exe.snapshots()[2].final_loops);
  // Incremental mode: the final loop form aliases the last tactic's capture
  // instead of cloning the module again.
  EXPECT_EQ(exe.snapshots()[2].module.get(), exe.snapshots()[1].module.get());

  EXPECT_TRUE(exe.Print(Stage::Source()).ok());
  StatusOr<std::string> after_bp = exe.Print(Stage::AfterTactic(0));
  ASSERT_TRUE(after_bp.ok());
  EXPECT_NE(after_bp.value().find("loop"), std::string::npos);
  EXPECT_TRUE(exe.Print(Stage::AfterTactic(1)).ok());
  EXPECT_TRUE(exe.Print(Stage::Loops()).ok());
  EXPECT_TRUE(exe.Print(Stage::Spmd()).ok());
  EXPECT_EQ(exe.Print(Stage::AfterTactic(2)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, CacheHitClonesSnapshotsAndServesFreshStages) {
  // Regression: a cache hit used to clone the spmd module but share the
  // stage-snapshot modules with the cached entry (and so with every
  // sibling executable). A hit's Print(Stage) must serve the same content
  // from fully self-contained snapshots — including after respecializing
  // away and back — with the intra-result aliasing structure preserved.
  Program program("snap_hit");
  Value* x = program.AddInput(TensorType({16, 8}), "x");
  Value* w1 = program.AddInput(TensorType({8, 12}), "w1");
  Value* w2 = program.AddInput(TensorType({12, 8}), "w2");
  OpBuilder& builder = program.builder();
  program.Return({builder.MatMul(builder.MatMul(x, w1), w2)});
  Mesh mesh({{"B", 4}, {"M", 2}});
  std::vector<Tactic> bp_mp = {ManualPartition{"BP", {{"x", 0}}, "B"},
                               ManualPartition{"MP", {{"w1", 1}}, "M"}};
  std::vector<Tactic> wp = {ManualPartition{"WP", {{"w2", 1}}, "M"}};
  PartitionOptions options;
  options.capture_stages = true;

  Executable miss = program.Partition(bp_mp, mesh, options).value();
  std::string after_bp = miss.Print(Stage::AfterTactic(0)).value();
  std::string loops = miss.Print(Stage::Loops()).value();

  Executable hit = program.Partition(bp_mp, mesh, options).value();
  EXPECT_EQ(program.cache_stats().hits, 1);
  ASSERT_EQ(hit.snapshots().size(), miss.snapshots().size());
  // Same content...
  EXPECT_EQ(hit.Print(Stage::AfterTactic(0)).value(), after_bp);
  EXPECT_EQ(hit.Print(Stage::Loops()).value(), loops);
  // ...from cloned modules, not the cached entry's (no sharing between
  // executables, just like the spmd module itself).
  for (size_t i = 0; i < hit.snapshots().size(); ++i) {
    EXPECT_NE(hit.snapshots()[i].module.get(),
              miss.snapshots()[i].module.get());
  }
  // The final loop form still aliases the last tactic's capture inside
  // each executable (the clone maps aliases to one shared clone).
  ASSERT_EQ(hit.snapshots().size(), 3u);
  EXPECT_EQ(hit.snapshots()[2].module.get(), hit.snapshots()[1].module.get());

  // Respecialize away and back: the second hit's stages are not stale
  // either — identical to the original miss's renderings.
  Executable other = hit.Respecialize(wp).value();
  EXPECT_NE(other.Print(Stage::AfterTactic(0)).value(), after_bp);
  Executable back = other.Respecialize(bp_mp).value();
  EXPECT_EQ(back.Print(Stage::AfterTactic(0)).value(), after_bp);
  EXPECT_EQ(back.Print(Stage::Loops()).value(), loops);
}

TEST(SnapshotTest, StModeCapturesAndVerifiesFinalLoopForm) {
  // PartIR-st (incremental=false): the final loop form is materialized by
  // MaterializeLoopsPass after the single deferred propagation, and the
  // manager still runs it through the IR verifier exactly once.
  Program program("st");
  Value* x = program.AddInput(TensorType({16, 8}), "x");
  Value* w = program.AddInput(TensorType({8, 8}), "w");
  program.Return({program.builder().MatMul(x, w)});
  PartitionOptions options;
  options.incremental = false;
  options.capture_stages = true;
  options.verify_passes = true;
  Executable exe =
      program
          .Partition({ManualPartition{"BP", {{"x", 0}}, "B"}},
                     Mesh({{"B", 4}}), options)
          .value();
  EXPECT_TRUE(exe.Print(Stage::Loops()).ok());
  EXPECT_TRUE(exe.Print(Stage::AfterTactic(0)).ok());
  EXPECT_GT(exe.pipeline_stats().verify_runs, 0);
}

TEST(SnapshotTest, UncapturedStagesErrorWithGuidance) {
  Program program("bare");
  Value* x = program.AddInput(TensorType({16, 8}), "x");
  Value* w = program.AddInput(TensorType({8, 8}), "w");
  program.Return({program.builder().MatMul(x, w)});
  Executable exe =
      program
          .Partition({ManualPartition{"BP", {{"x", 0}}, "B"}},
                     Mesh({{"B", 4}}))
          .value();
  EXPECT_TRUE(exe.snapshots().empty());
  StatusOr<std::string> print = exe.Print(Stage::AfterTactic(0));
  ASSERT_FALSE(print.ok());
  EXPECT_EQ(print.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(print.status().message().find("capture_stages"),
            std::string::npos);
  EXPECT_EQ(exe.Print(Stage::Loops()).status().code(),
            StatusCode::kFailedPrecondition);
  // The endpoints need no capture.
  EXPECT_TRUE(exe.Print(Stage::Source()).ok());
  EXPECT_TRUE(exe.Print(Stage::Spmd()).ok());
}

// ---- Collective-plan invalidation ----

TEST(PlanInvalidationTest, MutableAccessDropsTheStalePlan) {
  Program program("plan");
  Value* x = program.AddInput(TensorType({16, 8}), "x");
  Value* w = program.AddInput(TensorType({8, 8}), "w");
  program.Return({program.builder().MatMul(x, w)});
  Mesh mesh({{"B", 4}});
  Executable exe =
      program.Partition({ManualPartition{"BP", {{"x", 0}}, "B"}}, mesh)
          .value();
  // The pipeline's plan-collectives pass left a plan behind.
  EXPECT_NE(exe.spmd().plan, nullptr);
  // Every mutable route drops it.
  SpmdModule& spmd = exe.mutable_spmd();
  EXPECT_EQ(spmd.plan, nullptr);
  spmd.plan = BuildCollectivePlan(spmd.mesh, *spmd.module);
  (void)spmd.mutable_main();
  EXPECT_EQ(spmd.plan, nullptr);
  spmd.plan = BuildCollectivePlan(spmd.mesh, *spmd.module);
  RunSpmdPeephole(spmd, kRewriteAllSpmd);  // module rebuild resets the plan
  EXPECT_EQ(spmd.plan, nullptr);
  // Run replans ad hoc and still works.
  std::vector<Tensor> inputs = program.RandomInputs(3);
  EXPECT_TRUE(exe.Run(inputs).ok());
}

// ---- Bit-identical outputs vs. the pre-refactor pipeline ----

void ExpectBitIdentical(const std::vector<Tensor>& a,
                        const std::vector<Tensor>& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].dims(), b[i].dims()) << label << " output " << i;
    EXPECT_EQ(std::memcmp(a[i].data().data(), b[i].data().data(),
                          a[i].data().size() * sizeof(float)),
              0)
        << label << " output " << i << " is not bit-identical";
  }
}

/**
 * The pre-refactor pipeline, composed by hand from the same stage
 * functions the passes wrap: actions -> propagation -> lowering ->
 * combined collective optimization -> plan. The pass pipeline must produce
 * bit-identical Run outputs and identical collective counts.
 */
void ExpectMatchesPreRefactorPipeline(Program& program,
                                      const std::vector<Tactic>& schedule,
                                      const Mesh& mesh,
                                      const std::vector<Tensor>& inputs,
                                      const std::string& label) {
  PartitionOptions options;
  options.per_tactic_reports = false;
  options.use_cache = false;
  Executable exe = program.Partition(schedule, mesh, options).value();
  std::vector<Tensor> via_passes =
      exe.Run(inputs, RunOptions{}).value();

  PartitionContext ctx(program.func(), mesh);
  for (const Tactic& tactic : schedule) {
    if (const auto* manual = std::get_if<ManualPartition>(&tactic)) {
      ASSERT_TRUE(ApplyManualTacticOrError(ctx, *manual).ok()) << label;
      ctx.Propagate();
    } else {
      const auto& automatic = std::get<AutomaticPartition>(tactic);
      AutoOptions auto_options = automatic.options;
      auto_options.device = options.device;
      AutomaticallyPartition(ctx, automatic.axes, auto_options);
    }
  }
  SpmdModule spmd = LowerToSpmdOrError(ctx).value();
  OptimizeSpmd(spmd);
  spmd.plan = BuildCollectivePlan(spmd.mesh, *spmd.module);
  std::vector<Tensor> via_legacy = RunSpmd(spmd, inputs, {}).value();

  ExpectBitIdentical(via_passes, via_legacy, label);
  CollectiveStats legacy = CountCollectives(*spmd.module, spmd.mesh);
  EXPECT_EQ(exe.Collectives().all_gather, legacy.all_gather) << label;
  EXPECT_EQ(exe.Collectives().all_reduce, legacy.all_reduce) << label;
  EXPECT_EQ(exe.Collectives().reduce_scatter, legacy.reduce_scatter) << label;
  EXPECT_EQ(exe.Collectives().all_to_all, legacy.all_to_all) << label;
}

TransformerConfig SmallTransformer() {
  TransformerConfig config;
  config.num_layers = 1;
  config.d_model = 16;
  config.num_heads = 2;
  config.head_dim = 8;
  config.ffw_size = 32;
  config.vocab = 32;
  config.batch = 4;
  config.seq = 4;
  return config;
}

TEST(PreRefactorEquivalenceTest, QuickstartChain) {
  Program program("main");
  Value* x = program.AddInput(TensorType({256, 8}), "x");
  Value* w1 = program.AddInput(TensorType({8, 16}), "w1");
  Value* w2 = program.AddInput(TensorType({16, 8}), "w2");
  OpBuilder& builder = program.builder();
  program.Return({builder.MatMul(builder.MatMul(x, w1), w2)});
  std::vector<Tactic> schedule = {
      ManualPartition{"BP", {{"x", 0}}, "B"},
      ManualPartition{"MP", {{"w1", 1}}, "M"},
      ManualPartition{"Z3", {{"w1", 0}, {"w2", 1}}, "B"},
  };
  ExpectMatchesPreRefactorPipeline(program, schedule,
                                   Mesh({{"B", 4}, {"M", 2}}),
                                   program.RandomInputs(1), "quickstart");
}

TEST(PreRefactorEquivalenceTest, TransformerTraining) {
  TransformerConfig config = SmallTransformer();
  Program program = Program::Capture([&](Module& module) {
    return BuildTransformerTrainingStep(module, config);
  });
  ExpectMatchesPreRefactorPipeline(
      program, {schedules::TransformerBP(), schedules::TransformerMP()},
      Mesh({{"batch", 2}, {"model", 2}}),
      program.RandomInputs(21, static_cast<float>(config.vocab)),
      "transformer training");
}

TEST(PreRefactorEquivalenceTest, TransformerInference) {
  TransformerConfig config = SmallTransformer();
  Program program = Program::Capture([&](Module& module) {
    return BuildTransformerInference(module, config, /*decode_steps=*/2);
  });
  ExpectMatchesPreRefactorPipeline(
      program, {schedules::InferenceBP()}, Mesh({{"batch", 4}}),
      program.RandomInputs(22, static_cast<float>(config.vocab)),
      "transformer inference");
}

TEST(PreRefactorEquivalenceTest, GnsEdgeSharding) {
  GnsConfig config;
  config.message_steps = 2;
  config.num_edges = 16;
  config.num_nodes = 8;
  Program program = Program::Capture(
      [&](Module& module) { return BuildGnsLoss(module, config); });
  ExpectMatchesPreRefactorPipeline(
      program, {schedules::GnsES()}, Mesh({{"batch", 4}}),
      program.RandomInputs(23, static_cast<float>(config.num_nodes)),
      "gns edge sharding");
}

TEST(PreRefactorEquivalenceTest, AutomaticPartitioning) {
  Program program("chain");
  Value* x = program.AddInput(TensorType({16, 8}), "x");
  Value* w1 = program.AddInput(TensorType({8, 8}), "w1");
  Value* w2 = program.AddInput(TensorType({8, 8}), "w2");
  OpBuilder& builder = program.builder();
  program.Return({builder.MatMul(builder.MatMul(x, w1), w2)});
  AutomaticPartition automatic;
  automatic.name = "auto";
  automatic.axes = {"B"};
  automatic.options.simulations = 16;
  ExpectMatchesPreRefactorPipeline(program, {automatic}, Mesh({{"B", 4}}),
                                   program.RandomInputs(24), "automatic");
}

}  // namespace
}  // namespace partir

// Tests for SPMD lowering, collective fusion, and end-to-end equivalence of
// the device-local program with the unpartitioned program under the
// multi-device interpreter (the executable Appendix C theorem).
#include <gtest/gtest.h>

#include "src/core/context.h"
#include "src/interp/interpreter.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/spmd/lowering.h"
#include "src/spmd/optimize.h"
#include "src/ir/passes.h"
#include "src/spmd/spmd_interpreter.h"

namespace partir {
namespace {

constexpr float kTol = 2e-3f;

// Lowers, optimizes, runs on all devices, and compares with the reference.
void ExpectSpmdEquivalent(PartitionContext& ctx, uint64_t seed,
                          float index_modulus = 0.0f) {
  SpmdModule spmd = LowerToSpmd(ctx);
  OptimizeSpmd(spmd);
  std::vector<Tensor> inputs =
      MakeRandomInputs(*ctx.func(), seed, index_modulus);
  std::vector<Tensor> want = Evaluate(*ctx.func(), inputs);
  std::vector<Tensor> got = RunSpmd(spmd, inputs).value();
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i].dims(), got[i].dims());
    EXPECT_LT(Tensor::MaxAbsDiff(want[i], got[i]), kTol)
        << "output " << i << " diverged;\n"
        << Print(*spmd.module);
  }
}

struct Chain {
  Module module;
  Func* func;
  Value* x;
  Value* w1;
  Value* w2;
  Value* out;
};

Chain BuildChain() {
  Chain chain;
  chain.func = chain.module.AddFunc("main");
  chain.x = chain.func->body().AddArg(TensorType({16, 8}), "x");
  chain.w1 = chain.func->body().AddArg(TensorType({8, 12}), "w1");
  chain.w2 = chain.func->body().AddArg(TensorType({12, 8}), "w2");
  OpBuilder builder(&chain.func->body());
  Value* x1 = builder.MatMul(chain.x, chain.w1);
  chain.out = builder.MatMul(x1, chain.w2);
  builder.Return({chain.out});
  return chain;
}

TEST(SpmdLoweringTest, BatchParallelLocalTypes) {
  Chain chain = BuildChain();
  PartitionContext ctx(chain.func, Mesh({{"B", 4}, {"M", 2}}));
  ASSERT_TRUE(ctx.TileValue(chain.x, 0, "B"));
  ctx.Propagate();
  SpmdModule spmd = LowerToSpmd(ctx);
  OptimizeSpmd(spmd);

  // Device-local x is 4x8 (Listing 2); weights stay full.
  Func* main = spmd.main();
  EXPECT_EQ(main->body().arg(0)->tensor_type(), TensorType({4, 8}));
  EXPECT_EQ(main->body().arg(1)->tensor_type(), TensorType({8, 12}));
  CollectiveStats stats = CountCollectives(*spmd.module, spmd.mesh);
  EXPECT_EQ(stats.all_gather, 0);
  EXPECT_EQ(stats.all_reduce, 0);
  ExpectSpmdEquivalent(ctx, 200);
}

TEST(SpmdLoweringTest, MegatronIntroducesOneAllReduce) {
  // Listing 3: BP+MP. The second matmul contracts over the M-sharded dim.
  Chain chain = BuildChain();
  PartitionContext ctx(chain.func, Mesh({{"B", 4}, {"M", 2}}));
  ASSERT_TRUE(ctx.TileValue(chain.x, 0, "B"));
  ctx.Propagate();
  ASSERT_TRUE(ctx.TileValue(chain.w1, 1, "M"));
  ctx.Propagate();
  SpmdModule spmd = LowerToSpmd(ctx);
  OptimizeSpmd(spmd);

  CollectiveStats stats = CountCollectives(*spmd.module, spmd.mesh);
  EXPECT_EQ(stats.all_reduce, 1);
  EXPECT_EQ(stats.all_gather, 0);
  EXPECT_EQ(spmd.main()->body().arg(1)->tensor_type(), TensorType({8, 6}));
  EXPECT_EQ(spmd.main()->body().arg(2)->tensor_type(), TensorType({6, 8}));
  ExpectSpmdEquivalent(ctx, 201);
}

TEST(SpmdLoweringTest, FsdpGathersParametersAtUse) {
  // Listing 4: BP+MP+Z3. The weights are additionally sharded over B and
  // must be all_gathered before their (single) use.
  Chain chain = BuildChain();
  PartitionContext ctx(chain.func, Mesh({{"B", 4}, {"M", 2}}));
  ASSERT_TRUE(ctx.TileValue(chain.x, 0, "B"));
  ctx.Propagate();
  ASSERT_TRUE(ctx.TileValue(chain.w1, 1, "M"));
  ctx.Propagate();
  ASSERT_TRUE(ctx.TileValue(chain.w1, 0, "B"));
  ASSERT_TRUE(ctx.TileValue(chain.w2, 1, "B"));
  ctx.Propagate();
  SpmdModule spmd = LowerToSpmd(ctx);
  OptimizeSpmd(spmd);

  CollectiveStats stats = CountCollectives(*spmd.module, spmd.mesh);
  EXPECT_EQ(stats.all_gather, 2);  // one per parameter
  EXPECT_EQ(stats.all_reduce, 1);  // Megatron reduction
  // w1 local: 8x12 / (B on dim0, M on dim1) = 2x6.
  EXPECT_EQ(spmd.main()->body().arg(1)->tensor_type(), TensorType({2, 6}));
  ExpectSpmdEquivalent(ctx, 202);
}

TEST(SpmdLoweringTest, OutputShardingTurnsAllReduceIntoReduceScatter) {
  // Section 2.4 "ES strategy": sharding the return value on the model axis
  // converts the all_reduce into a reduce_scatter.
  Chain chain = BuildChain();
  PartitionContext ctx(chain.func, Mesh({{"B", 4}, {"M", 2}}));
  ASSERT_TRUE(ctx.TileValue(chain.x, 0, "B"));
  ctx.Propagate();
  ASSERT_TRUE(ctx.TileValue(chain.w1, 1, "M"));
  ctx.Propagate();
  // Shard the output activation on M along its feature dim.
  ASSERT_TRUE(ctx.TileValue(chain.out, 1, "M"));
  SpmdModule spmd = LowerToSpmd(ctx);
  OptimizeSpmd(spmd);

  CollectiveStats stats = CountCollectives(*spmd.module, spmd.mesh);
  EXPECT_EQ(stats.reduce_scatter, 1);
  EXPECT_EQ(stats.all_reduce, 0);
  ExpectSpmdEquivalent(ctx, 203);
}

TEST(SpmdLoweringTest, AtomicZ2GathersShardedDelta) {
  Module module;
  Func* func = module.AddFunc("main");
  Value* param = func->body().AddArg(TensorType({64, 8}), "param");
  Value* grad = func->body().AddArg(TensorType({64, 8}), "grad");
  OpBuilder builder(&func->body());
  Value* updated = builder.Sub(param, grad);
  builder.Return({updated});

  PartitionContext ctx(func, Mesh({{"B", 4}}));
  ctx.AtomicValue(param, "B");
  ASSERT_TRUE(ctx.TileValue(grad, 0, "B"));
  ctx.Propagate();
  SpmdModule spmd = LowerToSpmd(ctx);
  OptimizeSpmd(spmd);

  // The sharded grad must be gathered to update the replicated param.
  CollectiveStats stats = CountCollectives(*spmd.module, spmd.mesh);
  EXPECT_EQ(stats.all_gather, 1);
  ExpectSpmdEquivalent(ctx, 204);
}

TEST(SpmdLoweringTest, PerUseGatherIsNotCSEd) {
  // A parameter used twice (forward and "backward") is gathered twice —
  // the FSDP re-gather (Design decision #4, paper Section 2.3).
  Module module;
  Func* func = module.AddFunc("main");
  Value* x = func->body().AddArg(TensorType({16, 8}), "x");
  Value* w = func->body().AddArg(TensorType({8, 8}), "w");
  OpBuilder builder(&func->body());
  Value* h1 = builder.MatMul(x, w);
  Value* h2 = builder.MatMul(h1, w);  // second use of w
  builder.Return({h2});

  PartitionContext ctx(func, Mesh({{"B", 4}}));
  ASSERT_TRUE(ctx.TileValue(x, 0, "B"));
  ctx.Propagate();
  ASSERT_TRUE(ctx.TileValue(w, 0, "B"));  // Z3-style weight sharding
  ctx.Propagate();
  SpmdModule spmd = LowerToSpmd(ctx);
  OptimizeSpmd(spmd);
  CollectiveStats stats = CountCollectives(*spmd.module, spmd.mesh);
  EXPECT_EQ(stats.all_gather, 2);
  ExpectSpmdEquivalent(ctx, 205);
}

TEST(SpmdLoweringTest, PlacementMoveEmitsAllToAll) {
  // A value realized tiled on dim 1 but required tiled on dim 0 by its
  // consumer moves the shard dim: an all_to_all (the redistribution of
  // Appendix C.5 / Figure 16). We arrange it via a concatenate whose concat
  // dim blocks propagation of the producer's tiling.
  Module module;
  Func* func = module.AddFunc("main");
  Value* x = func->body().AddArg(TensorType({8, 8}), "x");
  Value* w = func->body().AddArg(TensorType({8, 8}), "w");
  Value* y = func->body().AddArg(TensorType({8, 16}), "y");
  OpBuilder builder(&func->body());
  Value* p = builder.MatMul(x, w);
  Value* c = builder.Concatenate({p, p}, 1);  // dim 1 concat: blocked there
  Value* sum = builder.Add(c, y);
  builder.Return({sum});

  PartitionContext ctx(func, Mesh({{"a", 2}}));
  // Tactic 1: shard w's columns -> p realized tiled on dim 1.
  ASSERT_TRUE(ctx.TileValue(w, 1, "a"));
  ctx.Propagate();
  // Tactic 2: shard y's rows -> the add (and backward, the concat) adopt
  // tiling on dim 0; p is then *required* on dim 0 but realized on dim 1.
  ASSERT_TRUE(ctx.TileValue(y, 0, "a"));
  ctx.Propagate();
  SpmdModule spmd = LowerToSpmd(ctx);
  OptimizeSpmd(spmd);
  CollectiveStats stats = CountCollectives(*spmd.module, spmd.mesh);
  EXPECT_GE(stats.all_to_all, 1);
  ExpectSpmdEquivalent(ctx, 206);
}

TEST(SpmdInterpreterTest, ShardUnshardRoundTrip) {
  Mesh mesh({{"a", 2}, {"b", 2}});
  Tensor global = Tensor::Random({8, 4}, 77);
  ValueSharding sharding{AxesPerDim{{"a"}, {"b"}}};
  PerDevice shards = ShardTensor(global, sharding, mesh);
  EXPECT_EQ(shards[0].dims(), (std::vector<int64_t>{4, 2}));
  Tensor back = UnshardTensor(shards, sharding, mesh);
  EXPECT_LT(Tensor::MaxAbsDiff(back, global), 1e-6f);
}

TEST(SpmdInterpreterTest, DeepShardingTwoAxesOneDim) {
  Mesh mesh({{"a", 2}, {"b", 2}});
  Tensor global = Tensor::Random({8, 4}, 78);
  ValueSharding sharding{AxesPerDim{{"a", "b"}, {}}};
  PerDevice shards = ShardTensor(global, sharding, mesh);
  EXPECT_EQ(shards[0].dims(), (std::vector<int64_t>{2, 4}));
  Tensor back = UnshardTensor(shards, sharding, mesh);
  EXPECT_LT(Tensor::MaxAbsDiff(back, global), 1e-6f);
}

TEST(SpmdInterpreterTest, ReplicaMismatchIsDetected) {
  Mesh mesh({{"a", 2}});
  ValueSharding replicated{AxesPerDim{{}, {}}};
  PerDevice shards = {Tensor({2, 2}, {1, 2, 3, 4}),
                      Tensor({2, 2}, {9, 9, 9, 9})};
  EXPECT_DEATH(UnshardTensor(shards, replicated, mesh), "replica mismatch");
}

TEST(SpmdOptimizeTest, GatherOfSliceCancels) {
  Mesh mesh({{"a", 4}});
  Module module;
  Func* func = module.AddFunc("main");
  Value* x = func->body().AddArg(TensorType({16, 4}), "x");
  OpBuilder builder(&func->body());
  builder.SetAxisSizeFn([&](const std::string& a) { return mesh.AxisSize(a); });
  Value* sliced = builder.AllSlice(x, {{"a"}, {}});
  Value* gathered = builder.AllGather(sliced, {{"a"}, {}});
  builder.Return({gathered});

  SpmdModule spmd;
  spmd.module = std::make_unique<Module>();
  CloneFunc(*func, *spmd.module, "main", nullptr);
  spmd.mesh = mesh;
  OptimizeSpmd(spmd);
  CollectiveStats stats = CountCollectives(*spmd.module, spmd.mesh);
  EXPECT_EQ(stats.all_gather, 0);
  EXPECT_EQ(stats.all_slice, 0);
}

TEST(SpmdOptimizeTest, SliceOfSplatConstantShrinks) {
  Mesh mesh({{"a", 4}});
  SpmdModule spmd;
  spmd.module = std::make_unique<Module>();
  spmd.mesh = mesh;
  Func* func = spmd.module->AddFunc("main");
  OpBuilder builder(&func->body());
  builder.SetAxisSizeFn([&](const std::string& a) { return mesh.AxisSize(a); });
  Value* c = builder.Constant(1.0, {16, 4});
  Value* sliced = builder.AllSlice(c, {{"a"}, {}});
  builder.Return({sliced});
  OptimizeSpmd(spmd);
  CollectiveStats stats = CountCollectives(*spmd.module, spmd.mesh);
  EXPECT_EQ(stats.all_slice, 0);
  // The function now returns a local 4x4 constant.
  Value* result = spmd.main()->results()[0];
  EXPECT_EQ(result->tensor_type(), TensorType({4, 4}));
}

TEST(SpmdOptimizeTest, GatherSliceAcrossDimsBecomesAllToAll) {
  Mesh mesh({{"a", 2}});
  SpmdModule spmd;
  spmd.module = std::make_unique<Module>();
  spmd.mesh = mesh;
  Func* func = spmd.module->AddFunc("main");
  Value* x = func->body().AddArg(TensorType({4, 4}), "x");
  OpBuilder builder(&func->body());
  builder.SetAxisSizeFn([&](const std::string& a) { return mesh.AxisSize(a); });
  Value* gathered = builder.AllGather(x, {{"a"}, {}});
  Value* sliced = builder.AllSlice(gathered, {{}, {"a"}});
  builder.Return({sliced});
  OptimizeSpmd(spmd);
  CollectiveStats stats = CountCollectives(*spmd.module, spmd.mesh);
  EXPECT_EQ(stats.all_to_all, 1);
  EXPECT_EQ(stats.all_gather, 0);
  EXPECT_EQ(stats.all_slice, 0);
}

// ---- Reduce-scatter formation (the form-reduce-scatter pass family) ----

/** Builds an empty device-local module over `mesh` with a builder wired to
 *  its main function. */
SpmdModule EmptySpmd(const Mesh& mesh, OpBuilder& builder) {
  SpmdModule spmd;
  spmd.module = std::make_unique<Module>();
  spmd.mesh = mesh;
  spmd.module->AddFunc("main");
  builder.SetInsertionBlock(&spmd.main()->body());
  builder.SetAxisSizeFn(
      [mesh](const std::string& a) { return mesh.AxisSize(a); });
  return spmd;
}

TEST(SpmdOptimizeTest, ReduceScatterFormsAcrossPartialAxisOverlap) {
  // The embedding-style multi-axis chain: a gradient all_reduced over axis
  // "a" but sliced to a parameter sharded over "a" *and* "b". The sliced
  // axis outside the reduction survives as a residual all_slice; the
  // overlap still forms a reduce_scatter.
  Mesh mesh({{"a", 2}, {"b", 2}});
  OpBuilder builder(nullptr);
  SpmdModule spmd = EmptySpmd(mesh, builder);
  Value* x = spmd.main()->body().AddArg(TensorType({8, 8}), "x");
  Value* reduced = builder.AllReduce(x, {"a"}, "sum");
  Value* sliced = builder.AllSlice(reduced, {{"a"}, {"b"}});
  builder.Return({sliced});

  EXPECT_GT(RunSpmdPeephole(
                spmd, kRewriteReduceScatter | kRewriteReduceScatterPartial),
            0);
  EliminateDeadCode(*spmd.mutable_main());
  CollectiveStats stats = CountCollectives(*spmd.module, spmd.mesh);
  EXPECT_EQ(stats.all_reduce, 0);
  EXPECT_EQ(stats.reduce_scatter, 1);
  EXPECT_EQ(stats.all_slice, 1);  // residual slice over the unreduced axis
  EXPECT_EQ(spmd.main()->results()[0]->tensor_type(), TensorType({4, 4}));
}

TEST(SpmdOptimizeTest, PartialOverlapKeepsResidualAllReduce) {
  // Reduced over {a, c}, sliced over {a, b}: reduce_scatter on the overlap
  // {a}, residual all_reduce on {c}, residual all_slice on {b}.
  Mesh mesh({{"a", 2}, {"b", 2}, {"c", 2}});
  OpBuilder builder(nullptr);
  SpmdModule spmd = EmptySpmd(mesh, builder);
  Value* x = spmd.main()->body().AddArg(TensorType({8, 8}), "x");
  Value* reduced = builder.AllReduce(x, {"a", "c"}, "sum");
  Value* sliced = builder.AllSlice(reduced, {{"a"}, {"b"}});
  builder.Return({sliced});

  OptimizeSpmd(spmd);
  CollectiveStats stats = CountCollectives(*spmd.module, spmd.mesh);
  EXPECT_EQ(stats.reduce_scatter, 1);
  EXPECT_EQ(stats.all_reduce, 1);
  EXPECT_EQ(stats.all_slice, 1);
  EXPECT_EQ(spmd.main()->results()[0]->tensor_type(), TensorType({4, 4}));
}

TEST(SpmdOptimizeTest, PartialOverlapIsGatedBehindItsRewriteBit) {
  // Without kRewriteReduceScatterPartial the legacy subset-only behavior
  // holds: a partially overlapping chain is left alone.
  Mesh mesh({{"a", 2}, {"b", 2}});
  OpBuilder builder(nullptr);
  SpmdModule spmd = EmptySpmd(mesh, builder);
  Value* x = spmd.main()->body().AddArg(TensorType({8, 8}), "x");
  Value* reduced = builder.AllReduce(x, {"a"}, "sum");
  Value* sliced = builder.AllSlice(reduced, {{"a"}, {"b"}});
  builder.Return({sliced});

  EXPECT_EQ(RunSpmdPeephole(spmd, kRewriteReduceScatter), 0);
  CollectiveStats stats = CountCollectives(*spmd.module, spmd.mesh);
  EXPECT_EQ(stats.all_reduce, 1);
  EXPECT_EQ(stats.reduce_scatter, 0);
}

TEST(SpmdOptimizeTest, AdjacentAllReducesMergeAndFullyScatter) {
  // all_reduce("b") of all_reduce("a") merges into one multi-axis
  // all_reduce, which the following two-axis slice turns into a single
  // reduce_scatter — the chain across multiple mesh axes.
  Mesh mesh({{"a", 2}, {"b", 2}});
  OpBuilder builder(nullptr);
  SpmdModule spmd = EmptySpmd(mesh, builder);
  Value* x = spmd.main()->body().AddArg(TensorType({8, 8}), "x");
  Value* ar_a = builder.AllReduce(x, {"a"}, "sum");
  Value* ar_b = builder.AllReduce(ar_a, {"b"}, "sum");
  Value* sliced = builder.AllSlice(ar_b, {{"a"}, {"b"}});
  builder.Return({sliced});

  OptimizeSpmd(spmd);
  CollectiveStats stats = CountCollectives(*spmd.module, spmd.mesh);
  EXPECT_EQ(stats.all_reduce, 0);
  EXPECT_EQ(stats.reduce_scatter, 1);
  EXPECT_EQ(stats.all_slice, 0);
  EXPECT_EQ(spmd.main()->results()[0]->tensor_type(), TensorType({4, 4}));
}

TEST(SpmdOptimizeTest, SubsetFormationUnchangedByPartialBit) {
  // The legacy subset case (sliced axes all reduced) forms the same
  // reduce_scatter + leftover all_reduce with or without the partial bit.
  for (unsigned mask :
       {kRewriteReduceScatter,
        kRewriteReduceScatter | kRewriteReduceScatterPartial}) {
    Mesh mesh({{"a", 2}, {"b", 2}});
    OpBuilder builder(nullptr);
    SpmdModule spmd = EmptySpmd(mesh, builder);
    Value* x = spmd.main()->body().AddArg(TensorType({8, 8}), "x");
    Value* reduced = builder.AllReduce(x, {"a", "b"}, "sum");
    Value* sliced = builder.AllSlice(reduced, {{"a"}, {}});
    builder.Return({sliced});
    EXPECT_GT(RunSpmdPeephole(spmd, mask), 0);
    EliminateDeadCode(*spmd.mutable_main());
    CollectiveStats stats = CountCollectives(*spmd.module, spmd.mesh);
    EXPECT_EQ(stats.reduce_scatter, 1) << "mask " << mask;
    EXPECT_EQ(stats.all_reduce, 1) << "mask " << mask;  // leftover {b}
  }
}

// End-to-end property sweep: model x schedule x mesh. Every partitioned
// program must match the reference bit-for-bit (within float tolerance).
struct E2eParam {
  const char* name;
  int64_t b_size;
  int64_t m_size;
  int schedule;  // 0=BP, 1=BP+MP, 2=BP+MP+Z3, 3=MP only, 4=output-sharded
};

class SpmdE2eTest : public ::testing::TestWithParam<E2eParam> {};

TEST_P(SpmdE2eTest, PartitionedEqualsUnpartitioned) {
  const E2eParam& param = GetParam();
  Chain chain = BuildChain();
  PartitionContext ctx(chain.func,
                       Mesh({{"B", param.b_size}, {"M", param.m_size}}));
  switch (param.schedule) {
    case 0:
      ASSERT_TRUE(ctx.TileValue(chain.x, 0, "B"));
      ctx.Propagate();
      break;
    case 1:
      ASSERT_TRUE(ctx.TileValue(chain.x, 0, "B"));
      ctx.Propagate();
      ASSERT_TRUE(ctx.TileValue(chain.w1, 1, "M"));
      ctx.Propagate();
      break;
    case 2:
      ASSERT_TRUE(ctx.TileValue(chain.x, 0, "B"));
      ctx.Propagate();
      ASSERT_TRUE(ctx.TileValue(chain.w1, 1, "M"));
      ctx.Propagate();
      ASSERT_TRUE(ctx.TileValue(chain.w1, 0, "B"));
      ASSERT_TRUE(ctx.TileValue(chain.w2, 1, "B"));
      ctx.Propagate();
      break;
    case 3:
      ASSERT_TRUE(ctx.TileValue(chain.w1, 1, "M"));
      ctx.Propagate();
      break;
    case 4:
      ASSERT_TRUE(ctx.TileValue(chain.x, 0, "B"));
      ctx.Propagate();
      ASSERT_TRUE(ctx.TileValue(chain.w1, 1, "M"));
      ctx.Propagate();
      ASSERT_TRUE(ctx.TileValue(chain.out, 1, "M"));
      break;
  }
  ExpectSpmdEquivalent(ctx, 300 + param.schedule);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, SpmdE2eTest,
    ::testing::Values(E2eParam{"bp_4x2", 4, 2, 0}, E2eParam{"bp_2x2", 2, 2, 0},
                      E2eParam{"bpmp_4x2", 4, 2, 1},
                      E2eParam{"bpmp_2x4", 2, 4, 1},
                      E2eParam{"fsdp_4x2", 4, 2, 2},
                      E2eParam{"fsdp_2x2", 2, 2, 2},
                      E2eParam{"mp_4x2", 4, 2, 3},
                      E2eParam{"es_4x2", 4, 2, 4},
                      E2eParam{"bp_16x1", 16, 1, 0},
                      E2eParam{"fsdp_8x1", 8, 1, 2}),
    [](const ::testing::TestParamInfo<E2eParam>& info) {
      return info.param.name;
    });

// Graph block with gather/scatter, lowered end-to-end.
TEST(SpmdE2eExtraTest, EdgeShardedGraphBlock) {
  Module module;
  Func* func = module.AddFunc("main");
  Value* nodes = func->body().AddArg(TensorType({10, 6}), "nodes");
  Value* senders =
      func->body().AddArg(TensorType({24}, DType::kS32), "senders");
  Value* w = func->body().AddArg(TensorType({6, 6}), "w");
  OpBuilder builder(&func->body());
  Value* edge_feats = builder.Gather(nodes, senders);
  Value* messages = builder.Tanh(builder.MatMul(edge_feats, w));
  Value* aggregated = builder.ScatterAdd(senders, messages, 10);
  Value* updated = builder.Add(nodes, aggregated);
  builder.Return({updated});

  PartitionContext ctx(func, Mesh({{"batch", 4}}));
  ASSERT_TRUE(ctx.TileValue(senders, 0, "batch"));
  ctx.Propagate();
  SpmdModule spmd = LowerToSpmd(ctx);
  OptimizeSpmd(spmd);
  CollectiveStats stats = CountCollectives(*spmd.module, spmd.mesh);
  // One AllReduce for the scatter partials (edge sharding).
  EXPECT_EQ(stats.all_reduce, 1);
  ExpectSpmdEquivalent(ctx, 400, /*index_modulus=*/10.0f);
}

TEST(SpmdE2eExtraTest, ConvolutionChannelsSharded) {
  Module module;
  Func* func = module.AddFunc("main");
  Value* img = func->body().AddArg(TensorType({4, 6, 6, 4}), "img");
  Value* f1 = func->body().AddArg(TensorType({3, 3, 4, 8}), "f1");
  Value* f2 = func->body().AddArg(TensorType({3, 3, 8, 4}), "f2");
  OpBuilder builder(&func->body());
  Value* h = builder.Convolution(img, f1);
  Value* out = builder.Convolution(h, f2);
  builder.Return({out});

  PartitionContext ctx(func, Mesh({{"B", 2}, {"M", 2}}));
  ASSERT_TRUE(ctx.TileValue(img, 0, "B"));
  ctx.Propagate();
  ASSERT_TRUE(ctx.TileValue(f1, 3, "M"));
  ctx.Propagate();
  SpmdModule spmd = LowerToSpmd(ctx);
  OptimizeSpmd(spmd);
  // Megatron-style conv sharding: the second conv contracts the sharded
  // channel dim -> one AllReduce.
  CollectiveStats stats = CountCollectives(*spmd.module, spmd.mesh);
  EXPECT_EQ(stats.all_reduce, 1);
  ExpectSpmdEquivalent(ctx, 401);
}

}  // namespace
}  // namespace partir
